"""GHD-guided CQ evaluation (the Proposition 2.2 upper bound).

Given a generalised hypertree decomposition of the query's hypergraph of
width ``k``, evaluation proceeds in two stages:

1. **Bag materialisation** (:mod:`repro.cq.bags`) — for every decomposition
   node, join the (at most ``k``) relations of its cover ``lambda_u``
   together with every atom assigned to that node, and project onto the bag.
   Each bag relation has size at most ``||D||^k``.
2. **Acyclic evaluation** — the bag relations arranged along the
   decomposition tree form an acyclic instance equivalent to the original
   query, which Yannakakis answers in polynomial time.

This is what makes BCQ tractable for classes of bounded ghw, and (for full
CQs) what makes #CQ polynomial via the counting DP in
:mod:`repro.cq.counting`.

These functions are the *GHD strategy backend* of the unified engine
(:mod:`repro.engine`), which computes and caches the witnessing
decomposition through its analysis pass; they remain directly callable with
an explicitly supplied (or freshly computed) GHD.
"""

from __future__ import annotations

from repro.cq.bags import (  # noqa: F401  (re-exported for compatibility)
    DecompositionMismatchError,
    build_bag_join_tree,
)
from repro.cq.database import Database
from repro.cq.query import ConjunctiveQuery
from repro.cq.yannakakis import yannakakis_boolean, yannakakis_full
from repro.widths.ghd import GeneralizedHypertreeDecomposition
from repro.widths.ghw import ghw_upper_bound


def _default_ghd(query: ConjunctiveQuery) -> GeneralizedHypertreeDecomposition:
    result = ghw_upper_bound(query.hypergraph())
    if result.decomposition is None:
        raise DecompositionMismatchError("could not build a decomposition for the query")
    return result.decomposition


def decomposition_boolean_answer(
    query: ConjunctiveQuery,
    database: Database,
    ghd: GeneralizedHypertreeDecomposition | None = None,
) -> bool:
    """BCQ through a (supplied or computed) GHD."""
    if not query.atoms:
        return True
    if ghd is None:
        ghd = _default_ghd(query)
    tree = build_bag_join_tree(query, database, ghd)
    return yannakakis_boolean(tree)


def decomposition_enumerate_answers(
    query: ConjunctiveQuery,
    database: Database,
    ghd: GeneralizedHypertreeDecomposition | None = None,
) -> set[tuple]:
    """The answer set ``q(D)`` through a GHD (projected onto the free variables)."""
    if not query.atoms:
        return {()}
    if ghd is None:
        ghd = _default_ghd(query)
    tree = build_bag_join_tree(query, database, ghd)
    if not query.free_variables:
        return {()} if yannakakis_boolean(tree) else set()
    result = yannakakis_full(tree, output_columns=query.free_variables)
    return set(result.rows)


def decomposition_count_answers(
    query: ConjunctiveQuery,
    database: Database,
    ghd: GeneralizedHypertreeDecomposition | None = None,
) -> int:
    """#CQ for *full* CQs through a GHD (Proposition 4.14's upper bound).

    Raises ``ValueError`` for non-full queries: with existential variables the
    problem is #P-hard already for acyclic queries (Pichler and Skritek), and
    the join-tree DP would count the wrong thing.
    """
    from repro.cq.counting import count_answers_via_join_tree

    if not query.is_full():
        raise ValueError("decomposition-based counting requires a full CQ")
    if not query.atoms:
        return 1
    if ghd is None:
        ghd = _default_ghd(query)
    tree = build_bag_join_tree(query, database, ghd)
    return count_answers_via_join_tree(tree)
