"""Bag materialisation: from (query, database, GHD) to a ready join tree.

This is stage 1 of the Proposition 2.2 evaluation scheme, shared by every
decomposition-guided strategy of the engine (:mod:`repro.engine`): for each
decomposition node, join the relations of its cover ``lambda_u`` together
with every atom assigned to the node, and project onto the bag.  The bag
relations arranged along the decomposition tree form an acyclic instance
equivalent to the original query, which Yannakakis (or the counting DP of
:mod:`repro.cq.counting`) finishes in polynomial time.

Duplicate variable scopes are handled by joining *all* atoms sharing a scope
into every bag whose cover uses that scope as an edge: two atoms over the
same variables constrain the bag through different relations, so picking a
single representative would leave a bag relation looser than the query at
that node (the semijoin passes still see the other atom at its assigned
node, but the local invariant — every bag relation is the exact projection
of its atoms' join — would be lost).
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.cq.database import Database
from repro.cq.query import Atom, ConjunctiveQuery
from repro.cq.relational import NamedRelation, from_atom, natural_join_all
from repro.cq.yannakakis import JoinTree
from repro.widths.ghd import GeneralizedHypertreeDecomposition

Node = Hashable


class DecompositionMismatchError(ValueError):
    """Raised when the supplied GHD does not fit the query's hypergraph."""


def atoms_by_scope(query: ConjunctiveQuery) -> dict[frozenset, list[Atom]]:
    """All atoms grouped by variable scope, deterministically ordered.

    One hypergraph edge corresponds to *every* atom with that variable scope
    (duplicate scopes collapse into a single edge); a bag covering the edge
    must join them all.
    """
    by_scope: dict[frozenset, list[Atom]] = {}
    for atom in query.atoms:
        by_scope.setdefault(atom.variable_set(), []).append(atom)
    return {scope: sorted(atoms, key=repr) for scope, atoms in by_scope.items()}


def assign_atoms_to_nodes(
    query: ConjunctiveQuery, ghd: GeneralizedHypertreeDecomposition
) -> dict[Node, list[Atom]]:
    """Assign every atom to one decomposition node whose bag contains its scope."""
    assignment: dict[Node, list[Atom]] = {node: [] for node in ghd.bags}
    nodes = sorted(ghd.bags, key=repr)
    for atom in query.atoms:
        scope = atom.variable_set()
        host = next((node for node in nodes if scope <= ghd.bags[node]), None)
        if host is None:
            raise DecompositionMismatchError(
                f"atom {atom!r} is not covered by any bag of the decomposition"
            )
        assignment[host].append(atom)
    return assignment


def root_tree(ghd: GeneralizedHypertreeDecomposition) -> dict:
    """Orient the decomposition tree from an arbitrary (deterministic) root."""
    nodes = sorted(ghd.bags, key=repr)
    if not nodes:
        raise DecompositionMismatchError("the decomposition has no nodes")
    parent: dict[Node, Node | None] = {}
    root = nodes[0]
    parent[root] = None
    seen = {root}
    frontier = [root]
    decomposition = ghd.decomposition
    while frontier:
        current = frontier.pop()
        for neighbour in decomposition.neighbours(current):
            if neighbour in seen:
                continue
            seen.add(neighbour)
            parent[neighbour] = current
            frontier.append(neighbour)
    missing = set(nodes) - seen
    if missing:
        # The decomposition tree should be connected; connect leftovers to the
        # root so evaluation still works (their bags share no variables with
        # the rest, so this is a plain conjunction).
        for node in sorted(missing, key=repr):
            parent[node] = root
            seen.add(node)
    return parent


def build_bag_join_tree(
    query: ConjunctiveQuery, database: Database, ghd: GeneralizedHypertreeDecomposition
) -> JoinTree:
    """Materialise bag relations and arrange them along the decomposition tree."""
    scope_atoms = atoms_by_scope(query)
    assignment = assign_atoms_to_nodes(query, ghd)
    # One atom may be materialised at several nodes (cover edge here, assigned
    # atom there): build its named relation once and share it — the cached key
    # indexes on the shared relation then serve every bag join that probes it.
    materialised: dict[Atom, NamedRelation] = {}

    def relation_for(atom: Atom) -> NamedRelation:
        if atom not in materialised:
            materialised[atom] = from_atom(atom, database)
        return materialised[atom]

    bag_relations: dict[Node, NamedRelation] = {}
    for node, bag in ghd.bags.items():
        atoms: list[Atom] = []
        for cover_edge in sorted(ghd.covers[node], key=lambda e: sorted(map(repr, e))):
            for atom in scope_atoms.get(frozenset(cover_edge), ()):
                if atom not in atoms:
                    atoms.append(atom)
        for atom in assignment[node]:
            if atom not in atoms:
                atoms.append(atom)
        if not atoms:
            bag_relations[node] = NamedRelation(tuple(sorted(bag, key=repr)), set())
            if not bag:
                bag_relations[node] = NamedRelation((), {()})
            continue
        joined = natural_join_all([relation_for(atom) for atom in atoms])
        keep = [c for c in joined.columns if c in bag]
        bag_relations[node] = joined.project(keep)
    parent = root_tree(ghd)
    return JoinTree(bag_relations, parent)
