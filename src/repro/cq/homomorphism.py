"""The generic CQ solver: a hash-indexed backtracking engine plus the naive
reference implementation.

Evaluating a CQ over a database is exactly the homomorphism problem between
relational structures.  Two solvers live here:

* :func:`_solve_naive` — the original plain backtracking search that linearly
  scans every stored assignment at every node of the search tree.  It remains
  the ground truth that every optimised evaluator and every reduction is
  tested against.
* the **indexed engine** (:class:`_AtomIndex` + :func:`_solve`) — the same
  search space explored with per-variable inverted indexes
  (variable -> value -> assignment ids), a bound-prefix trie per atom,
  forward-checking domain pruning, and a fail-first dynamic variable order.
  Consistency checks and extension enumeration cost ``O(matches)`` instead of
  ``O(|relation|)``.

The engine makes no use of the *query's* hypergraph structure, so its running
time still degrades on high-width queries — which is precisely the behaviour
the tractability separation experiments (E7/E8) contrast with the
decomposition-guided evaluators.  The indexing only removes the Python-level
overhead that would otherwise drown the algorithmic signal.

Within the unified engine (:mod:`repro.engine`) this module is the
``indexed-backtracking`` strategy backend — the fallback the planner picks
when no decomposition within its width limit exists.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.cq.database import Database
from repro.cq.query import Constant, ConjunctiveQuery


class _AtomIndex:
    """Hash-indexed constraint data for a single atom.

    ``assignments`` holds one value tuple per distinct satisfying row, aligned
    with ``variables`` (the atom's variables in first-occurrence order, the
    fixed elimination order of the trie).  Two derived structures are built:

    * ``inverted`` — per-variable inverted index
      ``variable -> value -> frozenset of assignment ids``;
    * a bound-prefix trie (built lazily) — nested dicts keyed by the values of
      ``variables`` in order, so enumerating the extensions of a partial
      assignment that binds a *prefix* of the variables is a single trie walk.
    """

    __slots__ = ("atom", "variables", "assignments", "inverted", "_positions", "_trie")

    def __init__(self, atom, database: Database) -> None:
        from repro.cq.relational import from_atom

        self.atom = atom
        # ``from_atom`` performs the single-pass constant/repeated-variable
        # selection and projects onto one column per variable, in the atom's
        # first-occurrence variable order — exactly the assignment tuples the
        # indexes are built over.  Sharing it keeps the solver's selection
        # semantics identical to the relational kernel's by construction.
        relation = from_atom(atom, database)
        self.variables: tuple = relation.columns
        self._positions = {v: i for i, v in enumerate(self.variables)}
        self.assignments: list[tuple] = list(relation.rows)

        inverted: dict = {v: {} for v in self.variables}
        for rid, values in enumerate(self.assignments):
            for position, variable in enumerate(self.variables):
                inverted[variable].setdefault(values[position], set()).add(rid)
        self.inverted = {
            variable: {value: frozenset(ids) for value, ids in buckets.items()}
            for variable, buckets in inverted.items()
        }
        self._trie = None

    # ------------------------------------------------------------------
    @property
    def trie(self) -> dict:
        """Bound-prefix trie over ``variables`` (built on first use)."""
        if self._trie is None:
            root: dict = {}
            last = len(self.variables) - 1
            for rid, values in enumerate(self.assignments):
                node = root
                for depth, value in enumerate(values):
                    if depth == last:
                        node.setdefault(value, []).append(rid)
                    else:
                        node = node.setdefault(value, {})
                if not values:
                    # Constant-only atom: the empty assignment is the match.
                    root.setdefault((), []).append(rid)
            self._trie = root
        return self._trie

    def matching_ids(self, partial: dict) -> frozenset | None:
        """Ids of the assignments compatible with ``partial``; ``None`` means
        "unconstrained" (no variable of the atom is bound)."""
        id_sets = []
        for variable in self.variables:
            if variable in partial:
                ids = self.inverted[variable].get(partial[variable])
                if not ids:
                    return frozenset()
                id_sets.append(ids)
        if not id_sets:
            return None
        id_sets.sort(key=len)
        result = id_sets[0]
        for ids in id_sets[1:]:
            result = result & ids
            if not result:
                break
        return result

    def consistent(self, partial: dict) -> bool:
        """Is some row of the relation compatible with the partial assignment?

        Costs ``O(smallest inverted bucket)`` instead of ``O(|relation|)``.
        """
        if not self.assignments:
            return False
        matches = self.matching_ids(partial)
        return matches is None or bool(matches)

    def extensions(self, partial: dict) -> Iterator[dict]:
        """All assignments of the atom's variables compatible with ``partial``.

        When the bound variables form a prefix of the atom's elimination
        order the enumeration is a trie walk; otherwise it intersects the
        inverted-index buckets.  Either way the cost is proportional to the
        number of matches (plus one bucket intersection), not to the relation
        size.
        """
        if not self.assignments:
            return
        bound_prefix = 0
        for variable in self.variables:
            if variable in partial:
                bound_prefix += 1
            else:
                break
        if any(v in partial for v in self.variables[bound_prefix:]):
            # Bound variables do not form a pure prefix: fall back to the
            # inverted indexes.
            matches = self.matching_ids(partial)
            if matches is None:
                for values in self.assignments:
                    yield dict(zip(self.variables, values))
            else:
                for rid in matches:
                    yield dict(zip(self.variables, self.assignments[rid]))
            return
        # Walk the trie under the bound prefix, then enumerate the subtree.
        node = self.trie
        for variable in self.variables[:bound_prefix]:
            node = node.get(partial[variable])
            if node is None:
                return
        for rid in _trie_leaves(node, len(self.variables) - bound_prefix):
            yield dict(zip(self.variables, self.assignments[rid]))


def _trie_leaves(node, remaining_depth: int) -> Iterator[int]:
    if remaining_depth <= 0:
        # ``node`` is the leaf id list (or, for a constant-only atom, the root
        # holding the single empty-key bucket).
        if isinstance(node, list):
            yield from node
        else:
            for bucket in node.values():
                yield from bucket
        return
    if remaining_depth == 1:
        for bucket in node.values():
            yield from bucket
        return
    for child in node.values():
        yield from _trie_leaves(child, remaining_depth - 1)


# ----------------------------------------------------------------------
# The indexed engine
# ----------------------------------------------------------------------
def _solve(query: ConjunctiveQuery, database: Database) -> Iterator[dict]:
    """Yield all total assignments of the query variables satisfying all atoms.

    Backtracking over indexed atom *extensions*: at every search node a
    fail-first heuristic picks the unbound variable with the smallest current
    domain, then the tightest atom containing it enumerates its compatible
    extensions through :meth:`_AtomIndex.extensions` (a trie walk when the
    bound variables form a prefix of the atom's elimination order, an
    inverted-index intersection otherwise) — ``O(matches)`` per node instead
    of the naive solver's scan over every stored assignment.  Binding the
    extension's variables forward-checks the remaining domains through the
    inverted indexes, cutting dead branches before they are entered.  Each
    total assignment is produced exactly once (the extensions of an atom are
    pairwise distinct on its unbound variables, so branches are disjoint).
    """
    for atom in query.atoms:
        if not database.has_relation(atom.relation):
            return
    indexes = [_AtomIndex(atom, database) for atom in query.atoms]
    if any(not index.assignments for index in indexes):
        # Some atom has no compatible row at all (a constant-only atom whose
        # fact is absent also lands here).
        return

    # Atoms with variables take part in the search; constant-only atoms were
    # fully checked above.
    active = [index for index in indexes if index.variables]
    variables: list = list(query.variables)
    if not variables:
        yield {}
        return
    atoms_of: dict = {v: [] for v in variables}
    for index in active:
        for variable in index.variables:
            atoms_of[variable].append(index)

    # Initial domains: intersection of the inverted-index key sets over every
    # atom containing the variable.
    domains: dict = {}
    for variable in variables:
        domain: set | None = None
        for index in atoms_of[variable]:
            keys = set(index.inverted[variable])
            domain = keys if domain is None else domain & keys
            if not domain:
                return
        domains[variable] = domain if domain is not None else set()
        if not domains[variable]:
            return

    assignment: dict = {}
    order_hint = {variable: position for position, variable in enumerate(variables)}

    def bind(variable, value, saved_domains: dict) -> bool:
        """Bind ``variable`` and forward-check: for every atom containing it,
        prune the domains of the atom's unbound variables to the values some
        still-matching assignment supports.  Pruned entries are recorded in
        ``saved_domains`` for the caller to undo; returns False on a wipeout
        (the caller still undoes)."""
        assignment[variable] = value
        for index in atoms_of[variable]:
            matches = index.matching_ids(assignment)
            if matches is not None and not matches:
                return False
            for other in index.variables:
                if other in assignment:
                    continue
                position = index._positions[other]
                if matches is None:
                    supported = set(index.inverted[other])
                else:
                    supported = {index.assignments[rid][position] for rid in matches}
                current = domains[other]
                pruned = current & supported
                if len(pruned) != len(current):
                    saved_domains.setdefault(other, current)
                    domains[other] = pruned
                    if not pruned:
                        return False
        return True

    def search() -> Iterator[dict]:
        if len(assignment) == len(variables):
            yield dict(assignment)
            return
        # Fail-first: the unbound variable with the smallest current domain
        # (deterministic tie-break), then the tightest atom containing it.
        variable = min(
            (v for v in variables if v not in assignment),
            key=lambda v: (len(domains[v]), order_hint[v]),
        )

        def match_count(index: _AtomIndex) -> int:
            matches = index.matching_ids(assignment)
            return len(index.assignments) if matches is None else len(matches)

        branch_atom = min(atoms_of[variable], key=match_count)
        for extension in branch_atom.extensions(assignment):
            bound: list = []
            saved_domains: dict = {}
            feasible = True
            for other, value in extension.items():
                if other in assignment:
                    continue
                if value not in domains[other]:
                    feasible = False
                    break
                bound.append(other)
                if not bind(other, value, saved_domains):
                    feasible = False
                    break
            if feasible:
                yield from search()
            for other, previous in saved_domains.items():
                domains[other] = previous
            for other in bound:
                del assignment[other]

    yield from search()


# ----------------------------------------------------------------------
# The naive reference solver (the seed implementation, kept as ground truth)
# ----------------------------------------------------------------------
class _AtomConstraint:
    """Linearly-scanned constraint data for a single atom (reference only)."""

    def __init__(self, atom, database: Database) -> None:
        self.atom = atom
        self.variables = atom.variables()
        relation = database.relation(atom.relation)
        self.assignments: list[dict] = []
        seen: set = set()
        for row in relation.tuples:
            assignment = self._row_to_assignment(row)
            if assignment is None:
                continue
            key = tuple(assignment[v] for v in self.variables)
            if key in seen:
                continue
            seen.add(key)
            self.assignments.append(assignment)

    def _row_to_assignment(self, row: tuple) -> dict | None:
        assignment: dict = {}
        for term, value in zip(self.atom.terms, row):
            if isinstance(term, Constant):
                if term.value != value:
                    return None
                continue
            if term in assignment:
                if assignment[term] != value:
                    return None
            else:
                assignment[term] = value
        return assignment

    def consistent(self, partial: dict) -> bool:
        """Is some row of the relation compatible with the partial assignment?"""
        for assignment in self.assignments:
            if all(partial.get(v, assignment[v]) == assignment[v] for v in self.variables):
                return True
        return False

    def extensions(self, partial: dict) -> Iterator[dict]:
        for assignment in self.assignments:
            if all(partial.get(v, assignment[v]) == assignment[v] for v in self.variables):
                yield assignment


def _solve_naive(query: ConjunctiveQuery, database: Database) -> Iterator[dict]:
    """The original atom-ordered backtracking search with linear scans."""
    for atom in query.atoms:
        if not database.has_relation(atom.relation):
            return
    constraints = [_AtomConstraint(atom, database) for atom in query.atoms]
    if any(not c.assignments for c in constraints):
        return
    # Order atoms so that tightly constrained ones are expanded first.
    order = sorted(constraints, key=lambda c: len(c.assignments))
    all_variables = list(query.variables)

    def backtrack(index: int, partial: dict) -> Iterator[dict]:
        if index == len(order):
            yield dict(partial)
            return
        constraint = order[index]
        for extension in constraint.extensions(partial):
            added = []
            ok = True
            for variable, value in extension.items():
                if variable in partial:
                    if partial[variable] != value:
                        ok = False
                        break
                else:
                    partial[variable] = value
                    added.append(variable)
            if ok and all(c.consistent(partial) for c in order[index + 1:]):
                yield from backtrack(index + 1, partial)
            for variable in added:
                del partial[variable]

    produced: set = set()
    for solution in backtrack(0, {}):
        key = tuple(solution.get(v) for v in all_variables)
        if key in produced:
            continue
        produced.add(key)
        yield solution


# ----------------------------------------------------------------------
# Public API (served by the indexed engine)
# ----------------------------------------------------------------------
def boolean_answer(query: ConjunctiveQuery, database: Database) -> bool:
    """BCQ: is the answer set non-empty?"""
    if not query.atoms:
        return True
    for _ in _solve(query, database):
        return True
    return False


def enumerate_answers(query: ConjunctiveQuery, database: Database) -> set[tuple]:
    """The answer set ``q(D)``: tuples over the free variables (in the query's
    free-variable order).  For a Boolean query the answer is ``{()}`` when the
    query holds and ``{}`` otherwise."""
    if not query.atoms:
        return {()}
    answers: set[tuple] = set()
    free = query.free_variables
    for solution in _solve(query, database):
        answers.add(tuple(solution[v] for v in free))
    return answers


def count_answers(query: ConjunctiveQuery, database: Database) -> int:
    """#CQ by exhaustive enumeration (the reference for the counting tests).

    For full CQs this is ``|q(D)|`` in the paper's sense; for non-full queries
    it counts distinct projections onto the free variables.
    """
    return len(enumerate_answers(query, database))


# ----------------------------------------------------------------------
# Naive reference API (linear-scan backtracking, no indexes)
# ----------------------------------------------------------------------
# The differential conformance harness runs every registered engine strategy
# against these: the naive solver is the simplest credible implementation of
# the semantics, so any disagreement is a bug in the optimised route.
def naive_boolean_answer(query: ConjunctiveQuery, database: Database) -> bool:
    """BCQ through the naive reference solver."""
    if not query.atoms:
        return True
    for _ in _solve_naive(query, database):
        return True
    return False


def naive_enumerate_answers(query: ConjunctiveQuery, database: Database) -> set[tuple]:
    """The answer set ``q(D)`` through the naive reference solver."""
    if not query.atoms:
        return {()}
    free = query.free_variables
    return {
        tuple(solution[v] for v in free) for solution in _solve_naive(query, database)
    }


def naive_count_answers(query: ConjunctiveQuery, database: Database) -> int:
    """#CQ (distinct projections) through the naive reference solver."""
    return len(naive_enumerate_answers(query, database))
