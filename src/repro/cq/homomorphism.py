"""The generic backtracking CQ solver (baseline and ground truth).

Evaluating a CQ over a database is exactly the homomorphism problem between
relational structures; this module solves it with a plain backtracking search
over variable assignments, using the atom relations as constraint tables.  It
makes no use of the query's structure, so its running time degrades on
high-width queries — which is precisely the behaviour the tractability
separation experiments (E7/E8) contrast with the decomposition-guided
evaluators.

The functions here also serve as the reference implementation that every
optimised evaluator and every reduction is tested against.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.cq.database import Database
from repro.cq.query import Constant, ConjunctiveQuery


class _AtomConstraint:
    """Pre-indexed constraint data for a single atom."""

    def __init__(self, atom, database: Database) -> None:
        self.atom = atom
        self.variables = atom.variables()
        relation = database.relation(atom.relation)
        self.assignments: list[dict] = []
        seen: set = set()
        for row in relation.tuples:
            assignment = self._row_to_assignment(row)
            if assignment is None:
                continue
            key = tuple(assignment[v] for v in self.variables)
            if key in seen:
                continue
            seen.add(key)
            self.assignments.append(assignment)

    def _row_to_assignment(self, row: tuple) -> dict | None:
        assignment: dict = {}
        for term, value in zip(self.atom.terms, row):
            if isinstance(term, Constant):
                if term.value != value:
                    return None
                continue
            if term in assignment:
                if assignment[term] != value:
                    return None
            else:
                assignment[term] = value
        return assignment

    def consistent(self, partial: dict) -> bool:
        """Is some row of the relation compatible with the partial assignment?"""
        for assignment in self.assignments:
            if all(partial.get(v, assignment[v]) == assignment[v] for v in self.variables):
                return True
        return False

    def extensions(self, partial: dict) -> Iterator[dict]:
        for assignment in self.assignments:
            if all(partial.get(v, assignment[v]) == assignment[v] for v in self.variables):
                yield assignment


def _solve(query: ConjunctiveQuery, database: Database) -> Iterator[dict]:
    """Yield all total assignments of the query variables satisfying all atoms."""
    for atom in query.atoms:
        if not database.has_relation(atom.relation):
            return
    constraints = [_AtomConstraint(atom, database) for atom in query.atoms]
    if any(not c.assignments for c in constraints):
        # Some atom has no compatible row at all (a constant-only atom whose
        # fact is absent also lands here, since its only possible assignment
        # is the empty one and it was filtered out).
        return
    # Order atoms so that tightly constrained ones are expanded first.
    order = sorted(constraints, key=lambda c: len(c.assignments))
    all_variables = list(query.variables)

    def backtrack(index: int, partial: dict) -> Iterator[dict]:
        if index == len(order):
            yield dict(partial)
            return
        constraint = order[index]
        for extension in constraint.extensions(partial):
            added = []
            ok = True
            for variable, value in extension.items():
                if variable in partial:
                    if partial[variable] != value:
                        ok = False
                        break
                else:
                    partial[variable] = value
                    added.append(variable)
            if ok and all(c.consistent(partial) for c in order[index + 1:]):
                yield from backtrack(index + 1, partial)
            for variable in added:
                del partial[variable]

    produced: set = set()
    for solution in backtrack(0, {}):
        key = tuple(solution.get(v) for v in all_variables)
        if key in produced:
            continue
        produced.add(key)
        yield solution


def boolean_answer(query: ConjunctiveQuery, database: Database) -> bool:
    """BCQ: is the answer set non-empty?"""
    if not query.atoms:
        return True
    for _ in _solve(query, database):
        return True
    return False


def enumerate_answers(query: ConjunctiveQuery, database: Database) -> set[tuple]:
    """The answer set ``q(D)``: tuples over the free variables (in the query's
    free-variable order).  For a Boolean query the answer is ``{()}`` when the
    query holds and ``{}`` otherwise."""
    if not query.atoms:
        return {()}
    answers: set[tuple] = set()
    free = query.free_variables
    for solution in _solve(query, database):
        answers.add(tuple(solution[v] for v in free))
    return answers


def count_answers(query: ConjunctiveQuery, database: Database) -> int:
    """#CQ by exhaustive enumeration (the reference for the counting tests).

    For full CQs this is ``|q(D)|`` in the paper's sense; for non-full queries
    it counts distinct projections onto the free variables.
    """
    return len(enumerate_answers(query, database))
