"""Conjunctive queries (Section 2).

A conjunctive query is a function-free conjunction of relational atoms.  In
line with the paper we work with the following conventions:

* variables are plain strings (or any hashable), constants are wrapped in
  :class:`Constant` so they can never be confused with variables;
* queries may declare *free* variables; a query is **full** when every
  variable is free (required for the counting problem, Section 4.4) and
  **Boolean** when it has no free variables;
* the hypergraph of a query has the variables as vertices and one edge per
  atom variable-scope (so two atoms over the same variables contribute a
  single edge — the reading used in Section 4.3's degree discussion).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence
from dataclasses import dataclass

from repro.hypergraphs.hypergraph import Hypergraph

Term = Hashable


@dataclass(frozen=True)
class Constant:
    """A constant term appearing in a query atom (rare in this reproduction,
    but needed to distinguish constants from variables unambiguously)."""

    value: Hashable

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"


@dataclass(frozen=True)
class Atom:
    """A relational atom ``R(t_1, ..., t_n)``."""

    relation: str
    terms: tuple

    def __init__(self, relation: str, terms: Iterable[Term]) -> None:
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "terms", tuple(terms))

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> tuple:
        """The variables of the atom, in order of first occurrence."""
        seen = []
        for term in self.terms:
            if isinstance(term, Constant):
                continue
            if term not in seen:
                seen.append(term)
        return tuple(seen)

    def variable_set(self) -> frozenset:
        return frozenset(self.variables())

    def has_repeated_variables(self) -> bool:
        variables = [t for t in self.terms if not isinstance(t, Constant)]
        return len(variables) != len(set(variables))

    def __repr__(self) -> str:
        rendered = ", ".join(
            repr(t.value) if isinstance(t, Constant) else str(t) for t in self.terms
        )
        return f"{self.relation}({rendered})"


class ConjunctiveQuery:
    """A conjunctive query: a list of atoms plus the set of free variables.

    Parameters
    ----------
    atoms:
        The atoms of the query (order is preserved for display but carries no
        semantics).
    free_variables:
        The answer variables.  ``None`` (default) makes the query *full*
        (all variables free); an empty iterable makes it Boolean.
    """

    def __init__(
        self,
        atoms: Sequence[Atom],
        free_variables: Iterable[Term] | None = None,
    ) -> None:
        self.atoms: tuple[Atom, ...] = tuple(atoms)
        all_variables = self._collect_variables()
        if free_variables is None:
            self.free_variables: tuple = all_variables
        else:
            free = tuple(dict.fromkeys(free_variables))
            unknown = set(free) - set(all_variables)
            if unknown:
                raise ValueError(f"free variables {sorted(map(repr, unknown))} do not occur in the query")
            self.free_variables = free

    # ------------------------------------------------------------------
    def _collect_variables(self) -> tuple:
        seen: list = []
        for atom in self.atoms:
            for variable in atom.variables():
                if variable not in seen:
                    seen.append(variable)
        return tuple(seen)

    @property
    def variables(self) -> tuple:
        """All variables, in order of first occurrence."""
        return self._collect_variables()

    @property
    def existential_variables(self) -> tuple:
        free = set(self.free_variables)
        return tuple(v for v in self.variables if v not in free)

    def is_boolean(self) -> bool:
        return not self.free_variables

    def is_full(self) -> bool:
        """True if there is no existential quantification (every variable free)."""
        return set(self.free_variables) == set(self.variables)

    def arity(self) -> int:
        """The maximal arity of the query's atoms."""
        if not self.atoms:
            return 0
        return max(atom.arity for atom in self.atoms)

    # ------------------------------------------------------------------
    def relation_names(self) -> tuple:
        return tuple(dict.fromkeys(atom.relation for atom in self.atoms))

    def has_self_joins(self) -> bool:
        names = [atom.relation for atom in self.atoms]
        return len(names) != len(set(names))

    def has_repeated_variables(self) -> bool:
        return any(atom.has_repeated_variables() for atom in self.atoms)

    def has_constants(self) -> bool:
        return any(isinstance(t, Constant) for atom in self.atoms for t in atom.terms)

    def atoms_for_relation(self, relation: str) -> list[Atom]:
        return [atom for atom in self.atoms if atom.relation == relation]

    # ------------------------------------------------------------------
    def hypergraph(self) -> Hypergraph:
        """The query hypergraph: variables as vertices, one edge per atom
        variable-scope (duplicate scopes collapse)."""
        return Hypergraph(
            vertices=self.variables,
            edges=[atom.variable_set() for atom in self.atoms],
        )

    def degree(self) -> int:
        """The degree of the query = the degree of its hypergraph (the more
        permissive reading discussed in Section 4.3)."""
        return self.hypergraph().degree()

    # ------------------------------------------------------------------
    def as_boolean(self) -> "ConjunctiveQuery":
        """The Boolean version of this query (no free variables)."""
        return ConjunctiveQuery(self.atoms, free_variables=())

    def as_full(self) -> "ConjunctiveQuery":
        """The full version of this query (all variables free)."""
        return ConjunctiveQuery(self.atoms, free_variables=None)

    def project(self, variables: Iterable[Term]) -> "ConjunctiveQuery":
        """The same atoms with a different set of free variables."""
        return ConjunctiveQuery(self.atoms, free_variables=variables)

    def restrict_to_atoms(self, atoms: Iterable[Atom]) -> "ConjunctiveQuery":
        kept = tuple(atoms)
        surviving = set()
        for atom in kept:
            surviving.update(atom.variables())
        free = tuple(v for v in self.free_variables if v in surviving)
        return ConjunctiveQuery(kept, free_variables=free)

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return (
            frozenset(self.atoms) == frozenset(other.atoms)
            and frozenset(self.free_variables) == frozenset(other.free_variables)
        )

    def __hash__(self) -> int:
        return hash((frozenset(self.atoms), frozenset(self.free_variables)))

    def __repr__(self) -> str:
        body = " AND ".join(repr(atom) for atom in self.atoms)
        head = ", ".join(str(v) for v in self.free_variables)
        return f"ConjunctiveQuery({head} :- {body})"
