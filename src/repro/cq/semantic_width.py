"""Semantic generalised hypertree width (Section 4.3).

``sem-ghw(q)`` is the minimum ghw over all CQs equivalent to ``q``, and it is
known (Barcelo et al.) to equal ``ghw(core(q))`` — which is how we compute it:
take the core, then apply the certified ghw bounds of
:mod:`repro.widths.ghw`.  The same recipe yields semantic treewidth, used by
Grohe's bounded-arity characterisation (Proposition 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cq.core import core_of
from repro.cq.query import ConjunctiveQuery
from repro.widths.ghw import GHWResult, ghw
from repro.widths.treewidth import TreewidthResult, treewidth


@dataclass
class SemanticWidthResult:
    """Bounds on a semantic width parameter, with the core that witnesses them."""

    core: ConjunctiveQuery
    lower: float
    upper: float

    @property
    def exact(self) -> bool:
        return self.lower == self.upper

    @property
    def value(self) -> float:
        if not self.exact:
            raise ValueError(f"semantic width only bounded in [{self.lower}, {self.upper}]")
        return self.upper


def semantic_ghw(query: ConjunctiveQuery, separator_budget: int = 3) -> SemanticWidthResult:
    """Certified bounds on ``sem-ghw(q) = ghw(core(q))``."""
    core = core_of(query)
    bounds: GHWResult = ghw(core.hypergraph(), separator_budget=separator_budget)
    return SemanticWidthResult(core=core, lower=bounds.lower, upper=bounds.upper)


def semantic_treewidth(query: ConjunctiveQuery) -> SemanticWidthResult:
    """Certified bounds on the semantic treewidth ``tw(core(q))``."""
    core = core_of(query)
    bounds: TreewidthResult = treewidth(core.hypergraph())
    return SemanticWidthResult(core=core, lower=bounds.lower, upper=bounds.upper)


def semantic_degree(query: ConjunctiveQuery) -> int:
    """The degree of the core's hypergraph.

    The core's hypergraph is a subhypergraph of the query's, so the semantic
    degree never exceeds the query degree — the observation that lets
    Theorem 4.11 stay inside the degree-2 world.
    """
    return core_of(query).hypergraph().degree()
