"""Per-column statistics sketches and the selectivity estimators they feed.

The engine's join ordering was a static, statistics-free heuristic: the
overlap-greedy pair selection in :func:`repro.cq.relational.natural_join_all`
knows the column structure and the input cardinalities but nothing about the
*data*.  Uniform data forgives that; Zipfian data does not — a hub value
carrying 30% of a column's mass turns the "obvious" join into an ``n²``
blow-up that a statistics-aware order avoids entirely.  This module supplies
the missing statistics layer:

* :class:`SpaceSaving` — the classic bounded-memory heavy-hitter summary.
  With capacity ``k`` over ``n`` additions it guarantees, per value ``v``:
  ``estimate(v) >= true(v)``, ``estimate(v) - error(v) <= true(v)``, and
  every value with true count ``> n/k`` is tracked.  The summaries drive the
  skew correction in the join estimator and hot-key detection for sharding.
* :class:`ColumnSketch` — one column's statistics: row count, an
  exact-then-sampled distinct count (an exact value set up to
  :data:`EXACT_DISTINCT_LIMIT`, a KMV min-hash sketch beyond it, reported
  monotonically under append), min/max where the values are orderable, and a
  Space-Saving summary.
* :class:`RelationStatistics` — per-column sketches for one relation,
  buildable row-wise (tuple-set kernel) or column-wise (columnar kernel) and
  **extendable** with appended rows, so the PR-9 version seam maintains them
  incrementally: caches keyed by :attr:`~repro.cq.database.Relation.version`
  fold in ``delta_since`` rows instead of rebuilding.
* :func:`estimate_join_rows` / :func:`estimate_semijoin_fraction` —
  independence-based selectivity with a heavy-hitter correction: matching
  hot values contribute their (upper-bound) frequency product exactly, the
  residual mass falls back to the ``1/max(d_l, d_r)`` uniform estimate.
* the **join-ordering mode** toggle (:func:`set_join_ordering` /
  :func:`forced_join_ordering`) and the process-wide **ledger** of estimate
  vs. actual records (:func:`ledger_snapshot`), which the executor surfaces
  as ``EvalResult.timings["stats"]`` and benchmarks use to force the static
  order for A/B comparison.

The module is deliberately dependency-free within the package: the kernels
(:mod:`repro.cq.relational`, :mod:`repro.cq.columnar`), the Yannakakis
passes, and the sharding layer all import *from* here.
"""

from __future__ import annotations

import threading
import zlib
from collections import deque
from collections.abc import Hashable, Iterable, Sequence
from contextlib import contextmanager

#: Counters kept by one Space-Saving summary.  24 entries track every value
#: above ~4% column mass exactly enough for ordering and hot-key decisions.
SPACE_SAVING_CAPACITY = 24

#: Distinct values counted exactly before a sketch switches to KMV sampling.
EXACT_DISTINCT_LIMIT = 4096

#: Minimum hashes the KMV estimator keeps once sampling starts.
KMV_SIZE = 256

_HASH_SPACE = float(1 << 32)


def _value_hash(value: Hashable) -> int:
    """A per-run-stable 32-bit hash (builtin ``hash`` is salted)."""
    return zlib.crc32(repr(value).encode("utf-8", "backslashreplace"))


class SpaceSaving:
    """Metwally et al.'s Space-Saving heavy-hitter summary.

    Tracks at most ``capacity`` values.  A new value arriving at a full
    summary evicts the minimum counter ``m`` and enters with count ``m + 1``
    and error ``m`` — so per tracked value, ``count`` is an upper bound on
    the true frequency and ``count - error`` a lower bound, and any value
    whose true frequency exceeds ``total/capacity`` is guaranteed tracked.
    """

    __slots__ = ("capacity", "total", "_entries", "_exhaustive_memo")

    def __init__(self, capacity: int = SPACE_SAVING_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("SpaceSaving needs capacity >= 1")
        self.capacity = capacity
        self.total = 0
        #: value -> [count, error]
        self._entries: dict = {}
        self._exhaustive_memo = None

    def add(self, value: Hashable, weight: int = 1) -> None:
        self.total += weight
        self._exhaustive_memo = None
        entry = self._entries.get(value)
        if entry is not None:
            entry[0] += weight
            return
        if len(self._entries) < self.capacity:
            self._entries[value] = [weight, 0]
            return
        victim = min(self._entries, key=lambda v: self._entries[v][0])
        floor = self._entries.pop(victim)[0]
        self._entries[value] = [floor + weight, floor]

    def estimate(self, value: Hashable) -> tuple[int, int]:
        """``(count, error)`` for a value: count is an upper bound on the
        true frequency, ``count - error`` a lower bound.  Untracked values
        report the current minimum counter as their (all-error) bound."""
        entry = self._entries.get(value)
        if entry is not None:
            return entry[0], entry[1]
        if len(self._entries) < self.capacity:
            return 0, 0
        floor = min(entry[0] for entry in self._entries.values())
        return floor, floor

    @property
    def exhaustive(self) -> bool:
        """Whether the summary still tracks *every* value seen, exactly.

        No eviction has ever happened (every error is zero) iff the column's
        distinct count never exceeded the capacity — the counts are then true
        frequencies rather than upper bounds, and a value absent from the
        summary is genuinely absent from the column.  The estimators use
        this to go fully exact on small domains.  The tracked counts must
        also account for the full total: a *derived* summary (composed from
        join inputs rather than built by scanning) carries partial counts
        with ``total`` set to the relation's row count, which this check
        correctly refuses to call exhaustive.

        Memoized until the next :meth:`add` — the ordering estimators ask
        per candidate pair, over sketches that only change on append.
        """
        memo = self._exhaustive_memo
        if memo is not None:
            return memo
        counted = 0
        result = True
        for entry in self._entries.values():
            if entry[1] != 0:
                result = False
                break
            counted += entry[0]
        else:
            result = counted == self.total
        self._exhaustive_memo = result
        return result

    def upper_bounds(self) -> dict:
        """``value -> count`` (upper bound) for every tracked value."""
        return {value: entry[0] for value, entry in self._entries.items()}

    def guaranteed(self) -> dict:
        """``value -> count - error`` (lower bound) for tracked values with
        a positive guaranteed frequency."""
        return {
            value: entry[0] - entry[1]
            for value, entry in self._entries.items()
            if entry[0] > entry[1]
        }

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"SpaceSaving(capacity={self.capacity}, tracked={len(self)}, "
            f"total={self.total})"
        )


class ColumnSketch:
    """Statistics for one column: rows, distinct, min/max, heavy hitters.

    The distinct count is **exact** until :data:`EXACT_DISTINCT_LIMIT`
    distinct values have been seen, then switches to a KMV (k-minimum-
    values) min-hash estimate seeded from the exact set.  The reported
    estimate is clamped monotone under append — adding rows never decreases
    it — which is the property incremental consumers rely on.
    """

    __slots__ = (
        "rows", "heavy", "minimum", "maximum", "_orderable",
        "_exact", "_kmv", "_kmv_threshold", "_floor", "_hot_memo",
    )

    def __init__(self, capacity: int = SPACE_SAVING_CAPACITY) -> None:
        self.rows = 0
        self.heavy = SpaceSaving(capacity)
        self.minimum = None
        self.maximum = None
        self._orderable = True
        self._exact: set | None = set()
        self._kmv: list | None = None  # sorted ascending, at most KMV_SIZE
        self._kmv_threshold = None
        self._floor = 0.0
        self._hot_memo = None

    def add(self, value: Hashable) -> None:
        self.rows += 1
        self._hot_memo = None
        self.heavy.add(value)
        if self._orderable:
            try:
                if self.minimum is None:
                    self.minimum = self.maximum = value
                else:
                    if value < self.minimum:
                        self.minimum = value
                    if value > self.maximum:
                        self.maximum = value
            except TypeError:
                # Mixed un-orderable types: min/max stop being meaningful.
                self._orderable = False
                self.minimum = self.maximum = None
        if self._exact is not None:
            self._exact.add(value)
            if len(self._exact) > EXACT_DISTINCT_LIMIT:
                self._start_sampling()
            return
        digest = _value_hash(value)
        if digest < self._kmv_threshold and digest not in self._kmv_set():
            kmv = self._kmv
            kmv.append(digest)
            kmv.sort()
            if len(kmv) > KMV_SIZE:
                kmv.pop()
            self._kmv_threshold = kmv[-1]

    def _start_sampling(self) -> None:
        hashes = sorted({_value_hash(value) for value in self._exact})
        self._floor = max(self._floor, float(len(self._exact)))
        self._kmv = hashes[:KMV_SIZE]
        self._kmv_threshold = self._kmv[-1] if self._kmv else 0
        self._exact = None

    def _kmv_set(self) -> set:
        return set(self._kmv)

    @property
    def exact(self) -> bool:
        """Whether the distinct count is still exact (below the limit)."""
        return self._exact is not None

    @property
    def distinct(self) -> float:
        """The (possibly estimated) distinct count, monotone under append."""
        if self._exact is not None:
            estimate = float(len(self._exact))
        elif len(self._kmv) < KMV_SIZE:
            estimate = float(len(self._kmv))
        else:
            kth = self._kmv[-1]
            estimate = (KMV_SIZE - 1) * _HASH_SPACE / max(1.0, float(kth))
        estimate = min(estimate, float(self.rows)) if self.rows else estimate
        if estimate > self._floor:
            self._floor = estimate
        return self._floor

    @classmethod
    def derived(
        cls,
        rows: int,
        distinct: float,
        heavy: "SpaceSaving",
        minimum=None,
        maximum=None,
    ) -> "ColumnSketch":
        """An *approximate* sketch composed from other sketches rather than
        built by scanning (join-output cardinality propagation).  The
        distinct count is recorded as an estimate (``exact`` is False) and
        the heavy summary is expected to carry all-error entries, so the
        estimators never mistake a derived sketch for exhaustive truth."""
        sketch = cls()
        sketch.rows = rows
        sketch.heavy = heavy
        sketch.minimum = minimum
        sketch.maximum = maximum
        sketch._orderable = minimum is not None
        sketch._exact = None
        sketch._kmv = []
        sketch._kmv_threshold = 0
        floor = float(distinct)
        if rows:
            floor = min(floor, float(rows))
        sketch._floor = max(0.0, floor)
        return sketch

    def hot_values(self) -> dict:
        """``value -> upper-bound count`` for the tracked heavy hitters,
        capped at the row count.  Memoized until the next :meth:`add` (the
        estimators ask repeatedly per ordering decision); callers must not
        mutate the returned dict."""
        memo = self._hot_memo
        if memo is None:
            rows = self.rows
            memo = {
                value: entry[0] if entry[0] < rows else rows
                for value, entry in self.heavy._entries.items()
            }
            self._hot_memo = memo
        return memo

    def __repr__(self) -> str:
        return (
            f"ColumnSketch(rows={self.rows}, distinct={self.distinct:.0f}, "
            f"exact={self.exact})"
        )


class RelationStatistics:
    """Per-column sketches for one relation (either kernel).

    ``columns`` are the column labels (query variables for pool relations,
    term positions for stored relations); sketches align positionally.
    """

    __slots__ = ("columns", "sketches", "rows", "_positions")

    def __init__(self, columns: Sequence[Hashable]) -> None:
        self.columns = tuple(columns)
        self.sketches = tuple(ColumnSketch() for _ in self.columns)
        self.rows = 0
        self._positions = {c: i for i, c in enumerate(self.columns)}

    @classmethod
    def from_rows(
        cls, columns: Sequence[Hashable], rows: Iterable[tuple]
    ) -> "RelationStatistics":
        stats = cls(columns)
        stats.extend_rows(rows)
        return stats

    @classmethod
    def from_columns(
        cls, columns: Sequence[Hashable], vectors: Sequence[Sequence], rows: int
    ) -> "RelationStatistics":
        """Column-wise build (the columnar kernel's layout)."""
        stats = cls(columns)
        stats.extend_columns(vectors, rows)
        return stats

    def extend_rows(self, rows: Iterable[tuple]) -> None:
        sketches = self.sketches
        count = 0
        for row in rows:
            count += 1
            for sketch, value in zip(sketches, row):
                sketch.add(value)
        self.rows += count
        if not sketches:
            return
        # Zero-column relations carry their cardinality in ``rows`` alone;
        # for the normal case the per-sketch row counters already agree.

    def extend_columns(self, vectors: Sequence[Sequence], rows: int) -> None:
        for sketch, vector in zip(self.sketches, vectors):
            add = sketch.add
            for value in vector:
                add(value)
        self.rows += rows

    def sketch(self, column: Hashable) -> ColumnSketch:
        return self.sketches[self._positions[column]]

    def __repr__(self) -> str:
        return (
            f"RelationStatistics(columns={self.columns!r}, rows={self.rows})"
        )


def relation_statistics(relation) -> RelationStatistics:
    """The memoized :class:`RelationStatistics` of a kernel relation.

    Duck-typed over both kernels through their ``statistics()`` method —
    each memoizes on the relation object and keeps the sketches patched
    through its append path, so repeated ordering decisions over the same
    pool relation pay the scan once.
    """
    return relation.statistics()


# ----------------------------------------------------------------------
# Selectivity estimation: independence with heavy-hitter correction
# ----------------------------------------------------------------------
def _column_join_estimate(
    left: ColumnSketch, right: ColumnSketch
) -> float:
    """Estimated matches of one shared column: hot values matched exactly
    (frequency upper bounds), the residual mass via ``1/max(d_l, d_r)``.
    When **both** summaries are exhaustive (small domains — every value
    tracked with its true count) the matched term *is* the answer: there is
    no residual mass, and a value absent from the other summary is known
    absent from the column."""
    nl, nr = left.rows, right.rows
    if nl == 0 or nr == 0:
        return 0.0
    hot_left = left.hot_values()
    hot_right = right.hot_values()
    if left.heavy.exhaustive and right.heavy.exhaustive:
        return min(
            sum(
                float(count) * float(hot_right[value])
                for value, count in hot_left.items()
                if value in hot_right
            ),
            float(nl) * float(nr),
        )
    matched = 0.0
    mass_left = 0.0
    mass_right = 0.0
    shared_hot = 0
    for value, count_left in hot_left.items():
        count_right = hot_right.get(value)
        if count_right is None:
            continue
        matched += float(count_left) * float(count_right)
        mass_left += count_left
        mass_right += count_right
        shared_hot += 1
    rest_left = max(0.0, nl - mass_left)
    rest_right = max(0.0, nr - mass_right)
    d_left = max(1.0, left.distinct - shared_hot)
    d_right = max(1.0, right.distinct - shared_hot)
    estimate = matched + rest_left * rest_right / max(d_left, d_right)
    return min(estimate, float(nl) * float(nr))


def estimate_join_rows(
    left: RelationStatistics,
    right: RelationStatistics,
    shared: Sequence[Hashable],
) -> float:
    """Estimated ``|L ⋈ R|`` over the shared columns: per-column skew-
    corrected selectivities combined under the independence assumption.
    With no shared columns this is the cross-product size."""
    base = float(left.rows) * float(right.rows)
    if base == 0.0:
        return 0.0
    estimate = base
    for column in shared:
        per_column = _column_join_estimate(left.sketch(column), right.sketch(column))
        estimate *= per_column / base
    return estimate


def estimate_semijoin_fraction(
    left: RelationStatistics,
    right: RelationStatistics,
    shared: Sequence[Hashable],
) -> float:
    """Estimated fraction of ``left`` rows surviving ``left ⋉ right``:
    hot values present on both sides survive with their full mass, the
    residual mass survives at the distinct-ratio rate."""
    if left.rows == 0:
        return 0.0
    if right.rows == 0:
        return 0.0 if shared else 1.0
    fraction = 1.0
    for column in shared:
        sketch_left = left.sketch(column)
        sketch_right = right.sketch(column)
        hot_left = sketch_left.hot_values()
        hot_right = sketch_right.hot_values()
        surviving = sum(
            float(count)
            for value, count in hot_left.items()
            if value in hot_right
        )
        rest = max(0.0, sketch_left.rows - sum(hot_left.values()))
        ratio = min(1.0, sketch_right.distinct / max(1.0, sketch_left.distinct))
        per_column = (surviving + rest * ratio) / max(1.0, float(sketch_left.rows))
        fraction *= min(1.0, per_column)
    return max(0.0, min(1.0, fraction))


def _derived_heavy(counts: dict, rows: int) -> SpaceSaving:
    """A Space-Saving summary carrying composed (approximate) hot counts:
    every entry is all-error (upper bound only, no guaranteed mass) and
    ``total`` is the relation's row count, so :attr:`SpaceSaving.exhaustive`
    stays False and downstream estimators treat the counts as bounds."""
    heavy = SpaceSaving()
    heavy.total = rows
    if len(counts) > heavy.capacity:
        kept = sorted(counts.items(), key=lambda item: -item[1])[: heavy.capacity]
    else:
        kept = counts.items()
    for value, count in kept:
        if count > 0:
            heavy._entries[value] = [count, count]
    return heavy


def _range_overlap(left: ColumnSketch, right: ColumnSketch) -> tuple:
    if left.minimum is None or right.minimum is None:
        return None, None
    try:
        return max(left.minimum, right.minimum), min(left.maximum, right.maximum)
    except TypeError:
        return None, None


def compose_join_statistics(
    left: RelationStatistics,
    right: RelationStatistics,
    shared: Sequence[Hashable],
    columns: Sequence[Hashable],
    rows: int,
) -> RelationStatistics:
    """Derived statistics for a join output — cardinality propagation
    instead of a scan.

    Re-scanning every intermediate to sketch it costs more than the
    ordering decisions it informs (the scan is O(rows x columns) per join
    step); composing from the already-known input sketches is O(capacity)
    per column.  Per output column:

    * **join columns** (shared): distinct is bounded by either side's
      distinct; a value hot on both sides appears ~``count_l * count_r``
      times in the output (exactly that many for the join column itself,
      before capping at the output size); min/max is the range overlap.
    * **carried columns**: distinct and hot counts come from the owning
      side; hot counts are scaled up by the join's expansion factor when it
      expanded (a hub value's rows match at least at the average rate) and
      left untouched when it filtered (skew tends to survive filtering —
      keeping the count is the safer upper bound for skew detection).

    Every derived summary is marked approximate (all-error entries,
    estimated distinct), so the exhaustive-exact shortcut in the estimators
    never fires on composed numbers.
    """
    shared_set = set(shared)
    stats = RelationStatistics(columns)
    stats.rows = rows
    sketches = []
    for column in columns:
        in_left = column in left._positions
        source = left if in_left else right
        sketch = source.sketch(column)
        if column in shared_set and in_left and column in right._positions:
            other = right.sketch(column)
            distinct = min(sketch.distinct, other.distinct)
            hot_left = sketch.hot_values()
            hot_right = other.hot_values()
            counts = {
                value: min(rows, int(count) * int(hot_right[value]))
                for value, count in hot_left.items()
                if value in hot_right
            }
            minimum, maximum = _range_overlap(sketch, other)
        else:
            scale = max(1.0, rows / max(1, sketch.rows))
            distinct = min(sketch.distinct, float(rows)) if rows else 0.0
            counts = {
                value: min(rows, int(count * scale))
                for value, count in sketch.hot_values().items()
            }
            minimum, maximum = sketch.minimum, sketch.maximum
        sketches.append(
            ColumnSketch.derived(
                rows, distinct, _derived_heavy(counts, rows), minimum, maximum
            )
        )
    stats.sketches = tuple(sketches)
    return stats


class StatisticsStore:
    """Per-relation statistics for one :class:`~repro.cq.database.Database`,
    maintained incrementally on the version seam.

    Sketches are built over the **stored tuples** (columns are the term
    positions ``0..arity-1``) and keyed by :attr:`~repro.cq.database
    .Relation.version`: a relation whose version moved since the last look
    folds exactly its ``delta_since`` rows into the existing sketches —
    appends update, they never rebuild.  The store is derived data; the
    database drops it before pickling, like the atom-view and columnar
    caches.
    """

    __slots__ = ("_relations", "builds", "extensions")

    def __init__(self) -> None:
        #: relation name -> (version reflected, RelationStatistics)
        self._relations: dict = {}
        self.builds = 0
        self.extensions = 0

    def relation_stats(self, relation) -> RelationStatistics:
        """The up-to-date sketches of one stored relation."""
        version = relation.version
        entry = self._relations.get(relation.name)
        if entry is not None:
            seen, stats = entry
            if version != seen:
                stats.extend_rows(relation.delta_since(seen))
                self.extensions += 1
                self._relations[relation.name] = (version, stats)
            return stats
        stats = RelationStatistics.from_rows(
            tuple(range(relation.arity)), relation.delta_since(0)
        )
        self.builds += 1
        self._relations[relation.name] = (version, stats)
        return stats

    def column_sketch(self, relation, column: int) -> ColumnSketch:
        """The sketch of one term position of a stored relation."""
        return self.relation_stats(relation).sketches[column]

    def info(self) -> dict:
        return {
            "relations": len(self._relations),
            "builds": self.builds,
            "extensions": self.extensions,
        }

    def __repr__(self) -> str:
        return (
            f"StatisticsStore(relations={len(self._relations)}, "
            f"builds={self.builds}, extensions={self.extensions})"
        )


# ----------------------------------------------------------------------
# Join-ordering mode: the cost-based / static-greedy toggle
# ----------------------------------------------------------------------
ORDERING_COST = "cost-based"
ORDERING_STATIC = "static-greedy"

_ordering_lock = threading.Lock()
_ordering_mode = ORDERING_COST


def join_ordering() -> str:
    """The process-wide join-ordering mode (:data:`ORDERING_COST` default)."""
    return _ordering_mode


def set_join_ordering(mode: str) -> str:
    """Set the ordering mode; returns the previous one.  Benchmarks force
    :data:`ORDERING_STATIC` to A/B the statistics-driven order against the
    historical overlap greedy on identical data."""
    global _ordering_mode
    if mode not in (ORDERING_COST, ORDERING_STATIC):
        raise ValueError(
            f"unknown join ordering {mode!r}; choose "
            f"{ORDERING_COST!r} or {ORDERING_STATIC!r}"
        )
    with _ordering_lock:
        previous = _ordering_mode
        _ordering_mode = mode
        return previous


@contextmanager
def forced_join_ordering(mode: str):
    """Run a block under a forced ordering mode (process-wide — benchmark
    and test use only, not safe under concurrent evaluation)."""
    previous = set_join_ordering(mode)
    try:
        yield
    finally:
        set_join_ordering(previous)


# ----------------------------------------------------------------------
# The estimate ledger: estimates vs. actuals, process-wide
# ----------------------------------------------------------------------
_LEDGER_FIELDS = (
    "cost_joins", "static_joins", "prefilter_passes", "prefilter_rows_dropped",
    "reducer_orderings", "estimated_rows", "actual_rows",
)
_ledger_lock = threading.Lock()
_ledger = {field: 0 for field in _LEDGER_FIELDS}
#: The most recent (estimated, actual) join-size pairs, for explainability.
_ledger_samples: deque = deque(maxlen=64)


def record_cost_join(estimated: float, actual: int) -> None:
    with _ledger_lock:
        _ledger["cost_joins"] += 1
        _ledger["estimated_rows"] += int(estimated)
        _ledger["actual_rows"] += actual
        _ledger_samples.append((int(estimated), actual))


def record_static_join() -> None:
    with _ledger_lock:
        _ledger["static_joins"] += 1


def record_prefilter(rows_dropped: int) -> None:
    with _ledger_lock:
        _ledger["prefilter_passes"] += 1
        _ledger["prefilter_rows_dropped"] += rows_dropped


def record_reducer_ordering() -> None:
    with _ledger_lock:
        _ledger["reducer_orderings"] += 1


def ledger_snapshot() -> dict:
    """A copy of the ledger counters plus the current ordering mode."""
    with _ledger_lock:
        snapshot = dict(_ledger)
    snapshot["mode"] = join_ordering()
    return snapshot


def ledger_delta(before: dict, after: dict) -> dict:
    """The counter movement between two snapshots (numeric fields only)."""
    return {
        field: after[field] - before[field]
        for field in _LEDGER_FIELDS
    }


def recent_estimates() -> list:
    """The last recorded (estimated, actual) join-size pairs."""
    with _ledger_lock:
        return list(_ledger_samples)


def reset_ledger() -> None:
    """Zero the ledger (test isolation)."""
    with _ledger_lock:
        for field in _LEDGER_FIELDS:
            _ledger[field] = 0
        _ledger_samples.clear()
