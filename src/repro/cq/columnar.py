"""Columnar relational kernel: interned value ids + array-backed relations.

The tuple-set kernel (:mod:`repro.cq.relational`) pays Python's per-object
price on every row it touches: a join builds a key *tuple* per probe, hashes
arbitrary values, concatenates row tuples, and inserts each result into a
set.  This module removes that price structurally:

* **value interning** — every distinct database value is mapped once to a
  small integer id through a per-database :class:`ValueInterner`.  After
  that, every relational operation works on ints: hashing is trivial,
  equality is pointer-free, and multi-column join keys *pack* into a single
  int (``k = k * base + id``, a bijection for ``base = |dictionary|``), so
  hash joins and semijoins probe ``dict``/``set`` objects keyed by plain
  integers instead of tuples of values;
* **columnar storage** — a :class:`ColumnarRelation` stores a relation as
  parallel arrays of ids (one ``array('q')``/list per column).  Operations
  produce *row index lists* and gather output columns with one list
  comprehension per column — O(width) tight loops per operation instead of
  O(rows) tuple constructions;
* **memoized key vectors** — packed key vectors, hash buckets
  (``key -> row indexes``), and key sets are cached per (column set, pack
  base) on the relation, so the Yannakakis passes touch each side of an
  edge once, exactly like the tuple-set kernel's memoized key indexes;
* **factorized counting** — the counting DP runs over per-row weight
  vectors and packed keys, so ``count()`` on full acyclic/GHD plans never
  materializes a result row;
* **decode once at the boundary** — ids are decoded back to values only
  when an answer set leaves the kernel (:meth:`ColumnarRelation
  .decode_rows`), one list comprehension per output column.

The tree-walking logic is *not* duplicated: :func:`build_columnar_bag_tree`
arranges :class:`ColumnarRelation` objects along the decomposition exactly
like :func:`repro.cq.bags.build_bag_join_tree`, and the resulting
:class:`~repro.cq.yannakakis.JoinTree` runs through the existing
``yannakakis_boolean`` / ``yannakakis_full`` / ``semijoin_reduce`` passes
unchanged — they are duck-typed over the relation interface (``columns``,
``natural_join``, ``semijoin``, ``semijoin_inplace``, ``project``,
``__len__``).  Only the counting DP needs a columnar twin
(:func:`columnar_count_join_tree`), because the tuple-set DP iterates
``relation.rows`` directly.

The engine dispatches here by default for the decomposition strategies
through :class:`repro.engine.backends.ColumnarBackend`; conversion and
caching live at the :class:`~repro.cq.database.Database` layer
(``Database.columnar_view``), versioned like the atom-view cache: appends
through the storage API *extend* cached views in place instead of
invalidating them, and :class:`DatabaseDelta` ships only the appended rows
to workers that already hold a piece resident.
"""

from __future__ import annotations

from array import array
from collections.abc import Hashable, Sequence

from repro.cq.bags import (
    DecompositionMismatchError,
    assign_atoms_to_nodes,
    atoms_by_scope,
    root_tree,
)
from repro.cq.query import ConjunctiveQuery, Constant
from repro.cq.relational import NamedRelation, natural_join_all
from repro.cq.statistics import RelationStatistics
from repro.cq.yannakakis import JoinTree, yannakakis_boolean, yannakakis_full

#: Entries kept per relation per derived-key memo (packed key vectors, hash
#: buckets, key sets).  A relation participates in a handful of key-column
#: sets over its lifetime; the cap only matters for long-lived resident
#: views probed under many distinct patterns, where unbounded memos were a
#: slow leak.
_MEMO_CAP = 16

_MEMO_COUNTERS = {"hits": 0, "misses": 0, "evictions": 0}


def memo_counters() -> dict:
    """A snapshot of the process-wide derived-key memo counters (surfaced
    through ``EngineSession.stats()``)."""
    return dict(_MEMO_COUNTERS)


def reset_memo_counters() -> None:
    """Zero the memo counters (test isolation)."""
    for key in _MEMO_COUNTERS:
        _MEMO_COUNTERS[key] = 0


class _BoundedMemo(dict):
    """A small LRU memo for one relation's derived key structures.

    A plain dict with insertion order as recency: :meth:`lookup` reinserts
    on hit, :meth:`store` evicts the least recently used entry at the cap.
    It *is* a dict, so the columnar store's extend-in-place path can keep
    iterating, patching and purging entries directly.
    """

    __slots__ = ()

    def lookup(self, key):
        value = self.get(key)
        if value is None:
            _MEMO_COUNTERS["misses"] += 1
            return None
        _MEMO_COUNTERS["hits"] += 1
        del self[key]
        self[key] = value
        return value

    def store(self, key, value) -> None:
        if key not in self and len(self) >= _MEMO_CAP:
            del self[next(iter(self))]
            _MEMO_COUNTERS["evictions"] += 1
        self[key] = value


class ValueInterner:
    """A grow-only bijection ``value <-> small int id`` for one database.

    Equal values (Python equality — ``1 == True == 1.0``) share one id, so
    id equality coincides with value equality exactly as tuple-set
    membership does; decoding returns the first-interned representative of
    the equality class, which compares equal to every member.
    """

    __slots__ = ("_ids", "values")

    def __init__(self) -> None:
        self._ids: dict = {}
        #: id -> value, the decode table (index == id).
        self.values: list = []

    def intern(self, value: Hashable) -> int:
        ident = self._ids.get(value)
        if ident is None:
            ident = len(self.values)
            self._ids[value] = ident
            self.values.append(value)
        return ident

    def id_of(self, value: Hashable) -> int | None:
        """The id of an already-interned value, ``None`` if never seen."""
        return self._ids.get(value)

    @classmethod
    def from_values(cls, values) -> "ValueInterner":
        """Rebuild an interner from a decode table (wire payloads ship the
        table; ids are the indices).  The table must be duplicate-free under
        Python equality — which :func:`encode_database` guarantees, since it
        produced the table by interning."""
        interner = cls()
        for value in values:
            interner.intern(value)
        if len(interner) != len(values):
            raise ValueError("wire dictionary contains equal values")
        return interner

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return f"ValueInterner(size={len(self.values)})"


class ColumnarRelation:
    """A relation stored as parallel columns of interned value ids.

    The row set is implicit: row ``i`` is ``(data[0][i], ..., data[w-1][i])``.
    Rows are kept **distinct** by construction — sources are built from
    tuple *sets*, joins of distinct inputs are distinct, and projection
    deduplicates — so no operation needs an output set.  ``length`` is
    explicit so zero-column relations (the relational units ``{}`` and
    ``{()}``) keep their cardinality.
    """

    __slots__ = (
        "columns", "interner", "_data", "_length", "_positions",
        "_key_cache", "_bucket_cache", "_keyset_cache", "_stats",
        "_project_cache",
    )

    def __init__(
        self,
        columns: Sequence[Hashable],
        interner: ValueInterner,
        data: Sequence[Sequence[int]] = (),
        length: int | None = None,
    ) -> None:
        columns = tuple(columns)
        data = tuple(data)
        if len(data) != len(columns):
            raise ValueError(
                f"{len(columns)} columns but {len(data)} data vectors"
            )
        if length is None:
            length = len(data[0]) if data else 0
        if any(len(vector) != length for vector in data):
            raise ValueError("column vectors must share one length")
        self._init(columns, interner, data, length)

    def _init(self, columns, interner, data, length) -> None:
        self.columns = columns
        self.interner = interner
        self._data = data
        self._length = length
        self._positions = {c: i for i, c in enumerate(columns)}
        if len(self._positions) != len(columns):
            raise ValueError(f"duplicate column names: {columns!r}")
        self._key_cache = _BoundedMemo()
        self._bucket_cache = _BoundedMemo()
        self._keyset_cache = _BoundedMemo()
        self._project_cache = _BoundedMemo()
        self._stats = None

    @classmethod
    def _trusted(cls, columns, interner, data, length) -> "ColumnarRelation":
        relation = object.__new__(cls)
        relation._init(tuple(columns), interner, tuple(data), length)
        return relation

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        return self._length > 0

    def __repr__(self) -> str:
        return (
            f"ColumnarRelation(columns={self.columns!r}, rows={self._length})"
        )

    def column_index(self, column: Hashable) -> int:
        try:
            return self._positions[column]
        except KeyError:
            raise ValueError(
                f"{column!r} is not a column of {self.columns!r}"
            ) from None

    def column(self, column: Hashable) -> Sequence[int]:
        """The id vector of one column (shared, do not mutate)."""
        return self._data[self.column_index(column)]

    def id_rows(self):
        """Iterate the rows as tuples of ids (tests and debugging)."""
        return zip(*self._data) if self.columns else iter([()] * self._length)

    # ------------------------------------------------------------------
    # Conversion boundary
    # ------------------------------------------------------------------
    @classmethod
    def from_named(
        cls, relation: NamedRelation, interner: ValueInterner
    ) -> "ColumnarRelation":
        """Intern a tuple-set relation into columns over ``interner``."""
        rows = relation.rows
        if not relation.columns:
            return cls._trusted((), interner, (), 1 if rows else 0)
        intern = interner.intern
        if rows:
            data = tuple(
                array("q", [intern(value) for value in column])
                for column in zip(*rows)
            )
        else:
            data = tuple(array("q") for _ in relation.columns)
        return cls._trusted(relation.columns, interner, data, len(rows))

    def to_named(self) -> NamedRelation:
        """Decode back to a tuple-set :class:`NamedRelation`."""
        return NamedRelation._trusted(self.columns, self.decode_rows())

    def decode_rows(self) -> set[tuple]:
        """The row set as value tuples — the single decode point where id
        space leaves the kernel (one list comprehension per column)."""
        if not self.columns:
            return {()} if self._length else set()
        values = self.interner.values
        decoded = [[values[ident] for ident in column] for column in self._data]
        return set(zip(*decoded))

    # ------------------------------------------------------------------
    # Packed key vectors (memoized per column set x pack base)
    # ------------------------------------------------------------------
    def _keys(self, columns: Sequence[Hashable]) -> Sequence[int]:
        """One int key per row over the given columns: the column itself for
        a single key column, ids packed into one int otherwise (``base =
        |dictionary|`` makes packing a bijection; the base is part of the
        memo key because the dictionary can grow between operations)."""
        positions = tuple(self._positions[c] for c in columns)
        if len(positions) == 1:
            return self._data[positions[0]]
        if not positions:
            return [0] * self._length
        base = len(self.interner)
        cache_key = (positions, base)
        keys = self._key_cache.lookup(cache_key)
        if keys is None:
            vectors = [self._data[p] for p in positions]
            keys = list(vectors[0])
            for vector in vectors[1:]:
                keys = [k * base + i for k, i in zip(keys, vector)]
            self._key_cache.store(cache_key, keys)
        return keys

    def _cache_key(self, columns: Sequence[Hashable]) -> tuple:
        positions = tuple(self._positions[c] for c in columns)
        base = len(self.interner) if len(positions) > 1 else 0
        return (positions, base)

    def _buckets(self, columns: Sequence[Hashable]) -> dict:
        """Hash index ``key -> list of row indexes`` (the join build side)."""
        cache_key = self._cache_key(columns)
        buckets = self._bucket_cache.lookup(cache_key)
        if buckets is None:
            buckets = {}
            get = buckets.get
            for index, key in enumerate(self._keys(columns)):
                rows = get(key)
                if rows is None:
                    buckets[key] = [index]
                else:
                    rows.append(index)
            self._bucket_cache.store(cache_key, buckets)
        return buckets

    def _keyset(self, columns: Sequence[Hashable]) -> set:
        """The set of packed keys (the semijoin probe side)."""
        cache_key = self._cache_key(columns)
        keyset = self._keyset_cache.lookup(cache_key)
        if keyset is None:
            buckets = self._bucket_cache.get(cache_key)
            keyset = (
                set(buckets) if buckets is not None
                else set(self._keys(columns))
            )
            self._keyset_cache.store(cache_key, keyset)
        return keyset

    def _invalidate(self) -> None:
        self._key_cache.clear()
        self._bucket_cache.clear()
        self._keyset_cache.clear()
        self._project_cache.clear()
        self._stats = None

    def statistics(self) -> RelationStatistics:
        """Per-column sketches over the interned **ids** (id equality is
        value equality, so distinct/heavy-hitter structure carries over),
        memoized until invalidation; the columnar store's extend-in-place
        path folds appended rows into existing sketches."""
        stats = self._stats
        if stats is None:
            stats = RelationStatistics.from_columns(
                self.columns, self._data, self._length
            )
            self._stats = stats
        return stats

    def adopt_statistics(self, stats: RelationStatistics) -> None:
        """Install externally composed statistics (cardinality propagation
        for large join outputs) so :meth:`statistics` never scans the id
        arrays.  Any later mutation invalidates them like a built sketch."""
        self._stats = stats

    def _gather(self, indexes: Sequence[int]) -> "ColumnarRelation":
        data = tuple(
            [column[i] for i in indexes] for column in self._data
        )
        return ColumnarRelation._trusted(
            self.columns, self.interner, data, len(indexes)
        )

    # ------------------------------------------------------------------
    # Relational algebra
    # ------------------------------------------------------------------
    def project(self, columns: Sequence[Hashable]) -> "ColumnarRelation":
        """Projection with dedup over the id arrays (single-column
        projections ride ``dict.fromkeys``'s C path).

        Memoized per column tuple (bounded, LRU like the key memos): the
        bag-materialisation pool projects the same resident atom views with
        the same column sets on every call, and a cached projection keeps
        not just its arrays but its own key indexes and statistics warm
        across calls.  Derived projections are never mutated — the semijoin
        pass only filters relations it created itself — and the store's
        extend-in-place path drops the memo on append."""
        columns = tuple(columns)
        if columns == self.columns:
            return self
        cached = self._project_cache.lookup(columns)
        if cached is not None:
            return cached
        if len(set(columns)) != len(columns):
            raise ValueError(f"duplicate column names: {columns!r}")
        positions = [self.column_index(c) for c in columns]
        if not positions:
            projected = ColumnarRelation._trusted(
                (), self.interner, (), 1 if self._length else 0
            )
        elif len(positions) == 1:
            unique = list(dict.fromkeys(self._data[positions[0]]))
            projected = ColumnarRelation._trusted(
                columns, self.interner, (unique,), len(unique)
            )
        else:
            keys = self._keys(columns)
            seen: set = set()
            add = seen.add
            survivors = [
                i for i, k in enumerate(keys) if not (k in seen or add(k))
            ]
            data = tuple(
                [self._data[p][i] for i in survivors] for p in positions
            )
            projected = ColumnarRelation._trusted(
                columns, self.interner, data, len(survivors)
            )
        self._project_cache.store(columns, projected)
        return projected

    def natural_join(self, other: "ColumnarRelation") -> "ColumnarRelation":
        """Vectorized hash join: build int-keyed buckets over the smaller
        probe pattern, emit matched row-index lists, gather columns."""
        if self.interner is not other.interner:
            raise ValueError("cannot join relations over different interners")
        shared = [c for c in self.columns if c in other._positions]
        other_only = [c for c in other.columns if c not in self._positions]
        result_columns = self.columns + tuple(other_only)
        if not shared:
            m = len(other)
            left_indexes = [i for i in range(self._length) for _ in range(m)]
            right_indexes = list(range(m)) * self._length
        else:
            buckets = other._buckets(shared)
            get = buckets.get
            left_indexes: list[int] = []
            right_indexes: list[int] = []
            extend_left = left_indexes.extend
            extend_right = right_indexes.extend
            for index, key in enumerate(self._keys(shared)):
                rows = get(key)
                if rows is not None:
                    extend_left([index] * len(rows))
                    extend_right(rows)
        data = tuple(
            [column[i] for i in left_indexes] for column in self._data
        ) + tuple(
            [other._data[other._positions[c]][j] for j in right_indexes]
            for c in other_only
        )
        return ColumnarRelation._trusted(
            result_columns, self.interner, data, len(left_indexes)
        )

    def semijoin(self, other: "ColumnarRelation") -> "ColumnarRelation":
        """Grouped semijoin filtering: keep rows whose packed key occurs in
        ``other``.  Returns ``self`` (no copy) when nothing is filtered."""
        survivors = self._semijoin_survivors(other)
        if survivors is None:
            return self
        return self._gather(survivors)

    def semijoin_inplace(self, other: "ColumnarRelation") -> "ColumnarRelation":
        """Like :meth:`semijoin` but rebinds this relation's columns,
        invalidating its memoized keys only when rows were removed."""
        survivors = self._semijoin_survivors(other)
        if survivors is not None:
            self._data = tuple(
                [column[i] for i in survivors] for column in self._data
            )
            self._length = len(survivors)
            self._invalidate()
        return self

    def _semijoin_survivors(self, other: "ColumnarRelation"):
        """Surviving row indexes, or ``None`` when every row survives."""
        if self.interner is not other.interner:
            raise ValueError("cannot semijoin relations over different interners")
        shared = [c for c in self.columns if c in other._positions]
        if not shared:
            return None if other._length else []
        keyset = other._keyset(shared)
        keys = self._keys(shared)
        survivors = [i for i, k in enumerate(keys) if k in keyset]
        if len(survivors) == self._length:
            return None
        return survivors


# ----------------------------------------------------------------------
# Per-database conversion + caching (consumed via Database.columnar_view)
# ----------------------------------------------------------------------
class ColumnarStore:
    """One database's interner plus its memoized columnar atom views.

    Mirrors the atom-view cache contract: views are keyed by ``(relation,
    term pattern)`` and tagged with the :attr:`~repro.cq.database.Relation
    .version` they reflect.  Growth through the versioned append-only
    storage API (``add_fact`` / ``Relation.add``) *extends* the cached view
    in place — the ``delta_since`` rows run through the atom's selection
    recipe, surviving rows intern and append onto the existing id columns,
    and the memoized packed-key vectors, hash buckets and key sets are
    patched rather than dropped.  The store is derived data and is dropped
    by ``Database.__getstate__`` before shipping to runtime workers.  The
    view cache is a bounded :class:`~repro.engine.analysis.LRUCache`, so its
    hit/miss counters feed ``EngineSession.stats()``.
    """

    def __init__(self, maxsize: int = 256, interner: ValueInterner | None = None) -> None:
        # Imported lazily: repro.engine depends on repro.cq, not vice versa;
        # by the time a store exists the engine package is importable.
        from repro.engine.analysis import LRUCache

        self.interner = interner if interner is not None else ValueInterner()
        self.views = LRUCache(maxsize)
        #: Number of times a cached view was extended in place instead of
        #: rebuilt (coverage guard for the incremental differential pass).
        self.extensions = 0
        #: relation name -> (column id-vectors in term-position order, rows):
        #: pre-interned base columns adopted from a wire payload.  Views over
        #: a based relation build by id-level selection and column gathering
        #: instead of re-scanning and re-interning the stored tuples.
        self._bases: dict = {}

    def adopt_base(self, name: str, data, length: int) -> None:
        """Adopt pre-interned base columns for one relation (the wire decode
        path).  ``data`` holds one id vector per term position over *this
        store's* interner; validity is checked by cardinality at view-build
        time, exactly like the view cache itself (grow-only storage API)."""
        self._bases[name] = (tuple(data), length)

    def view(self, atom, relation) -> ColumnarRelation:
        key = (atom.relation, atom.terms)
        version = relation.version
        entry = self.views.get(key)
        if entry is not None:
            seen, view, shape, owned = entry
            if seen != version:
                self._extend(view, shape, relation.delta_since(seen), owned)
                self.extensions += 1
                self.views.put(key, (version, view, shape, True))
            return view
        shape = self._atom_shape(atom)
        built, owned = self._build(atom, relation, shape)
        self.views.put(key, (version, built, shape, owned))
        return built

    def _extend(self, view, shape, delta_rows, owned: bool) -> None:
        """Fold appended stored rows into a cached view in place.

        The delta rows run through the same selection recipe as the full
        build; survivors intern column-wise and append onto the view's id
        columns.  Memoized key vectors, buckets and key sets whose pack base
        is still current are *patched* with the new rows (single-column key
        vectors are the live column arrays and extend automatically);
        entries packed under an outgrown dictionary base are purged — they
        would miss anyway, this just frees them.  A view that still shares
        its columns with an adopted wire base (``owned=False``) first
        promotes them to private ``array('q')`` copies: base columns use the
        narrowest wire typecode and may be shared with other views, so they
        must be neither widened nor mutated in place.
        """
        columns, keep, constant_checks, equality_checks = shape
        survivors = [
            row
            for row in delta_rows
            if not any(row[i] != value for i, value in constant_checks)
            and not any(row[i] != row[a] for i, a in equality_checks)
        ]
        if not columns:
            # Zero-column view (all-constant atom): the only thing growth
            # can do is flip the relational zero {} to the unit {()}.
            if survivors and view._length == 0:
                view._length = 1
                view._invalidate()
            return
        if not survivors:
            return
        if not owned:
            view._data = tuple(array("q", column) for column in view._data)
        intern = self.interner.intern
        # Stored rows are distinct and the kept projection is injective on
        # them (dropped positions are constants or repeats of kept anchors),
        # so the appended rows need no dedup against the resident columns.
        new_columns = [
            [intern(row[i]) for row in survivors] for i in keep
        ]
        base = len(self.interner)
        added = len(survivors)
        start = view._length

        def packed(positions):
            keys = list(new_columns[positions[0]]) if positions else [0] * added
            for position in positions[1:]:
                vector = new_columns[position]
                keys = [k * base + i for k, i in zip(keys, vector)]
            return keys

        for cache_key in list(view._key_cache):
            positions, entry_base = cache_key
            if entry_base != base:
                del view._key_cache[cache_key]
                continue
            view._key_cache[cache_key].extend(packed(positions))
        for cache_key in list(view._bucket_cache):
            positions, entry_base = cache_key
            if len(positions) > 1 and entry_base != base:
                del view._bucket_cache[cache_key]
                continue
            buckets = view._bucket_cache[cache_key]
            for offset, key in enumerate(packed(positions)):
                rows = buckets.get(key)
                if rows is None:
                    buckets[key] = [start + offset]
                else:
                    rows.append(start + offset)
        for cache_key in list(view._keyset_cache):
            positions, entry_base = cache_key
            if len(positions) > 1 and entry_base != base:
                del view._keyset_cache[cache_key]
                continue
            view._keyset_cache[cache_key].update(packed(positions))
        for vector, fresh in zip(view._data, new_columns):
            vector.extend(fresh)
        view._length += added
        # Derived projections hold copies of the pre-append rows; they are
        # cheap to rebuild, so an append just drops them (unlike the key
        # caches above, which patch in place).
        view._project_cache.clear()
        if view._stats is not None:
            # Keep the per-column sketches warm across appends too: fold the
            # new id rows in instead of dropping the statistics.
            view._stats.extend_columns(new_columns, added)

    @staticmethod
    def _atom_shape(atom):
        """The selection/projection structure of one atom's term pattern:
        (output columns, kept positions, constant checks, equality checks)."""
        columns: list = []
        keep: list[int] = []
        constant_checks: list[tuple[int, object]] = []
        equality_checks: list[tuple[int, int]] = []
        first_position: dict = {}
        for index, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                constant_checks.append((index, term.value))
            elif term in first_position:
                equality_checks.append((index, first_position[term]))
            else:
                first_position[term] = index
                keep.append(index)
                columns.append(term)
        return columns, keep, constant_checks, equality_checks

    def _build(self, atom, relation, shape) -> tuple:
        """Build a fresh view; returns ``(view, owned)`` where ``owned``
        says the view's columns are private (safe to extend in place).  The
        identity pattern over an adopted wire base shares the base arrays —
        those are promoted to private copies on first extension."""
        base = self._bases.get(atom.relation)
        if base is not None and base[1] == len(relation.tuples):
            return self._build_from_base(shape, *base)
        return self._build_from_tuples(relation, shape), True

    def _build_from_base(self, shape, data, length) -> tuple:
        """Build a view from adopted id columns: constants resolve through
        ``interner.id_of`` and every selection compares ints — the stored
        tuples are never touched, so a shipped piece serves its first query
        without re-scanning or re-interning anything."""
        columns, keep, constant_checks, equality_checks = shape
        id_checks: list[tuple[int, int]] = []
        missing_constant = False
        for index, value in constant_checks:
            ident = self.interner.id_of(value)
            if ident is None:
                # The constant never occurs in this database: no row matches.
                missing_constant = True
                break
            id_checks.append((index, ident))
        if missing_constant:
            survivors: list[int] = []
        elif id_checks or equality_checks:
            survivors = [
                row
                for row in range(length)
                if not any(data[i][row] != ident for i, ident in id_checks)
                and not any(data[i][row] != data[a][row] for i, a in equality_checks)
            ]
        else:
            # Identity pattern: the base columns serve as-is, zero copy —
            # shared with the base, so not extend-owned.
            if not columns:
                return ColumnarRelation._trusted(
                    (), self.interner, (), 1 if length else 0
                ), True
            return ColumnarRelation._trusted(
                tuple(columns), self.interner,
                tuple(data[i] for i in keep), length,
            ), False
        if not columns:
            return ColumnarRelation._trusted(
                (), self.interner, (), 1 if survivors else 0
            ), True
        # As in the tuple path: the kept projection is injective on the
        # surviving rows, so distinctness is inherited without a dedup.
        return ColumnarRelation._trusted(
            tuple(columns), self.interner,
            tuple([data[i][row] for row in survivors] for i in keep),
            len(survivors),
        ), True

    def _build_from_tuples(self, relation, shape) -> ColumnarRelation:
        """The columnar analogue of :func:`repro.cq.relational.from_atom`:
        constants and repeated variables resolve to selections in one pass
        over the stored tuples, then surviving rows intern column-wise."""
        columns, keep, constant_checks, equality_checks = shape
        intern = self.interner.intern
        if constant_checks or equality_checks:
            rows = [
                row
                for row in relation.tuples
                if not any(row[i] != value for i, value in constant_checks)
                and not any(row[i] != row[a] for i, a in equality_checks)
            ]
        else:
            rows = relation.tuples
        if not columns:
            # All-constant atom: the relational unit {()} or the zero {}.
            return ColumnarRelation._trusted(
                (), self.interner, (), 1 if rows else 0
            )
        if rows:
            transposed = list(zip(*rows))
            data = tuple(
                array("q", [intern(value) for value in transposed[i]])
                for i in keep
            )
            length = len(transposed[0])
        else:
            data = tuple(array("q") for _ in keep)
            length = 0
        # The kept projection is injective on the surviving rows (removed
        # positions are constants or repeats of kept anchors), so the
        # columns inherit the tuple set's distinctness without a dedup.
        return ColumnarRelation._trusted(
            tuple(columns), self.interner, data, length
        )

    def info(self) -> dict:
        """Counters for ``stats()``: view-cache hits/misses/size plus the
        interned dictionary size."""
        report = self.views.info()
        report["dictionary_size"] = len(self.interner)
        return report


# ----------------------------------------------------------------------
# Compact wire format (what the process runtime ships to workers)
# ----------------------------------------------------------------------
class DatabaseWire:
    """A database encoded for shipping: id columns + one shared dictionary.

    Pickling a tuple-set :class:`~repro.cq.database.Database` pays the
    per-object price on every cell — each value serialises at every
    occurrence, wrapped in a tuple per row inside a set per relation.  The
    wire form stores each **distinct** value once (``dictionary``, the
    interner's decode table) and each relation as parallel id columns in the
    narrowest unsigned ``array`` typecode that holds the dictionary (one,
    two, four or eight bytes per cell), which pickle as flat byte buffers.
    The receiving side
    rebuilds the interner from the dictionary (ids are list indices, so the
    bijection survives the trip) and adopts the columns directly into a warm
    :class:`ColumnarStore` — the first query over a shipped piece never
    re-scans or re-interns the stored tuples.
    """

    __slots__ = ("relations", "dictionary")

    def __init__(self, relations: dict, dictionary: list) -> None:
        #: relation name -> (arity, tuple of id-column arrays, rows).
        self.relations = relations
        #: id -> value decode table (duplicate-free; produced by interning).
        self.dictionary = dictionary

    def __repr__(self) -> str:
        return (
            f"DatabaseWire(relations={len(self.relations)}, "
            f"dictionary={len(self.dictionary)})"
        )

    def decode(self):
        """Rebuild a :class:`~repro.cq.database.Database` with a warm
        columnar store: tuple sets decode through the dictionary (one list
        comprehension per column), and the id columns are adopted as base
        columns so columnar views build by id-level selection."""
        from repro.cq.database import Database, Relation

        interner = ValueInterner.from_values(self.dictionary)
        values = interner.values
        database = Database()
        store = ColumnarStore(interner=interner)
        for name in sorted(self.relations):
            arity, data, length = self.relations[name]
            if arity == 0:
                rows = [()] if length else []
            elif length:
                decoded = [[values[ident] for ident in column] for column in data]
                rows = list(zip(*decoded))
            else:
                rows = []
            # _trusted keeps the version seam coherent: the decoded relation
            # reports version == row count, matching a relation grown row by
            # row, so delta shipping can resume from the decoded state.
            database.add_relation(Relation._trusted(name, arity, rows))
            store.adopt_base(name, data, length)
        database.attach_columnar_store(store)
        return database


def _id_typecode(dictionary_size: int) -> str:
    """The narrowest unsigned ``array`` typecode holding every id
    ``0 <= id < dictionary_size`` — the wire spends 1/2/4/8 bytes per cell
    instead of pickling each value occurrence."""
    if dictionary_size <= 1 << 8:
        return "B"
    if dictionary_size <= 1 << 16:
        return "H"
    if dictionary_size <= 1 << 32:
        return "I"
    return "Q"


def encode_database(database) -> DatabaseWire:
    """Encode ``database`` into a :class:`DatabaseWire`.

    Interns column-wise over one fresh dictionary shared by every relation
    (relation names in sorted order, so equal databases encode identically),
    then packs the id columns in the narrowest typecode the final dictionary
    size allows.  The source database's own columnar store — if any — is
    deliberately not reused: its dictionary may contain values interned for
    *other* relations or constants, and the wire should carry exactly the
    active domain.
    """
    interner = ValueInterner()
    intern = interner.intern
    staged: dict = {}
    for name in sorted(database.relations):
        relation = database.relations[name]
        rows = list(relation)  # the version-cached sorted order
        if relation.arity and rows:
            columns = tuple(
                [intern(value) for value in column] for column in zip(*rows)
            )
        else:
            columns = tuple(() for _ in range(relation.arity))
        staged[name] = (relation.arity, columns, len(rows))
    typecode = _id_typecode(len(interner))
    relations = {
        name: (arity, tuple(array(typecode, column) for column in columns), rows)
        for name, (arity, columns, rows) in staged.items()
    }
    return DatabaseWire(relations, interner.values)


class DeltaMismatchError(ValueError):
    """A :class:`DatabaseDelta` was applied to a database whose versions do
    not match the delta's base — the receiver is missing rows the sender
    assumed resident.  Callers fall back to shipping the full wire form."""


class DatabaseDelta:
    """The delta form of :class:`DatabaseWire`: only the rows appended after
    a base version, with their own mini-dictionary.

    An appended shard ships to the worker that already holds it resident as
    just the ``delta_since`` rows of each grown relation, encoded exactly
    like the full wire (id columns over a dictionary holding only the values
    the delta touches).  Each relation carries the base version the delta
    starts from; :meth:`apply` refuses (``DeltaMismatchError``) when the
    resident copy is not at that version, so a desynchronised worker falls
    back to a full ship instead of silently diverging.
    """

    __slots__ = ("relations", "dictionary")

    def __init__(self, relations: dict, dictionary: list) -> None:
        #: name -> (arity, tuple of id-column arrays, rows, base_version).
        self.relations = relations
        #: id -> value decode table for the delta rows only.
        self.dictionary = dictionary

    def __repr__(self) -> str:
        rows = sum(entry[2] for entry in self.relations.values())
        return (
            f"DatabaseDelta(relations={len(self.relations)}, rows={rows}, "
            f"dictionary={len(self.dictionary)})"
        )

    def apply(self, database) -> int:
        """Append the delta rows to ``database`` through the versioned
        storage API (so every resident cache layer extends in place on its
        next use).  Returns the number of rows appended."""
        values = self.dictionary
        applied = 0
        for name in sorted(self.relations):
            arity, data, length, base_version = self.relations[name]
            if database.has_relation(name):
                relation = database.relation(name)
            else:
                from repro.cq.database import Relation

                relation = Relation(name, arity)
                database.add_relation(relation)
            if relation.version != base_version:
                raise DeltaMismatchError(
                    f"relation {name!r} is at version {relation.version}, "
                    f"delta starts at {base_version}"
                )
            if arity == 0:
                rows = [()] if length else []
            else:
                decoded = [[values[ident] for ident in column] for column in data]
                rows = list(zip(*decoded))
            for row in rows:
                relation.add(row)
            applied += length
        return applied


def encode_delta(database, since: dict) -> DatabaseDelta:
    """Encode the rows of ``database`` appended after ``since`` (a relation
    name -> version map, e.g. the versions a worker's resident copy was last
    synced at) into a :class:`DatabaseDelta`.

    Relations absent from ``since`` are encoded from version 0 (the receiver
    creates them).  Relations with no new rows are omitted entirely.
    """
    interner = ValueInterner()
    intern = interner.intern
    staged: dict = {}
    for name in sorted(database.relations):
        relation = database.relations[name]
        base_version = since.get(name, 0)
        rows = relation.delta_since(base_version)
        if not rows:
            continue
        if relation.arity:
            columns = tuple(
                [intern(value) for value in column] for column in zip(*rows)
            )
        else:
            columns = ()
        staged[name] = (relation.arity, columns, len(rows), base_version)
    typecode = _id_typecode(len(interner))
    relations = {
        name: (
            arity,
            tuple(array(typecode, column) for column in columns),
            rows,
            base_version,
        )
        for name, (arity, columns, rows, base_version) in staged.items()
    }
    return DatabaseDelta(relations, interner.values)


# ----------------------------------------------------------------------
# Decomposition-guided evaluation over columnar trees
# ----------------------------------------------------------------------
def _push_bag_projections(pool: list, bag) -> list:
    """Projection pushdown for one bag's join pool.

    A column occurring in exactly one pool relation and outside the bag can
    never influence the bag relation (it is neither a join key nor an output
    column), so ``π_bag(R1 ⋈ … ⋈ Rn)`` equals the same expression with each
    ``Ri`` pre-projected onto ``(columns(Ri) ∩ bag) ∪ (columns(Ri) ∩
    columns(Rj), j ≠ i)``.  Pushing those projections below the join
    collapses the worst bag shapes — a cover pairing two *disjoint* edges
    used to materialise the full cross product (|R|² rows) before projecting
    it away; now the dangling side shrinks to its distinct key values first.
    """
    if len(pool) <= 1:
        return pool
    reduced = []
    for index, relation in enumerate(pool):
        elsewhere: set = set()
        for other_index, other in enumerate(pool):
            if other_index != index:
                elsewhere.update(other.columns)
        keep = tuple(
            c for c in relation.columns if c in bag or c in elsewhere
        )
        reduced.append(
            relation if len(keep) == len(relation.columns) else relation.project(keep)
        )
    return reduced


def build_columnar_bag_tree(
    query: ConjunctiveQuery, database, ghd
) -> JoinTree:
    """Bag materialisation along the decomposition with columnar relations.

    Mirrors :func:`repro.cq.bags.build_bag_join_tree` — same atom
    assignment, same duplicate-scope handling, same overlap-first multi-way
    join (the shared :func:`~repro.cq.relational.natural_join_all`, which is
    duck-typed over the relation interface) — but every relation is the
    database's memoized :meth:`~repro.cq.database.Database.columnar_view`,
    and single-use out-of-bag columns are projected away *below* the joins
    (:func:`_push_bag_projections`), which the final ``π_bag`` makes
    semantically invisible.
    """
    scope_atoms = atoms_by_scope(query)
    assignment = assign_atoms_to_nodes(query, ghd)
    interner = database.columnar_store().interner
    materialised: dict = {}

    def relation_for(atom) -> ColumnarRelation:
        if atom not in materialised:
            materialised[atom] = database.columnar_view(atom)
        return materialised[atom]

    bag_relations: dict = {}
    for node, bag in ghd.bags.items():
        atoms: list = []
        for cover_edge in sorted(ghd.covers[node], key=lambda e: sorted(map(repr, e))):
            for atom in scope_atoms.get(frozenset(cover_edge), ()):
                if atom not in atoms:
                    atoms.append(atom)
        for atom in assignment[node]:
            if atom not in atoms:
                atoms.append(atom)
        if not atoms:
            if bag:
                bag_relations[node] = ColumnarRelation(
                    tuple(sorted(bag, key=repr)), interner,
                    tuple([] for _ in bag), 0,
                )
            else:
                bag_relations[node] = ColumnarRelation((), interner, (), 1)
            continue
        pool = _push_bag_projections(
            [relation_for(atom) for atom in atoms], bag
        )
        joined = natural_join_all(pool)
        keep = [c for c in joined.columns if c in bag]
        bag_relations[node] = joined.project(keep)
    return JoinTree(bag_relations, root_tree(ghd))


def columnar_count_join_tree(tree: JoinTree) -> int:
    """The join-tree counting DP over columnar relations — fully
    factorized: weights are per-row int vectors, child weights group by
    packed key, and no result row is ever materialized.

    Same recurrence as :func:`repro.cq.counting.count_answers_via_join_tree`
    (Proposition 4.14): a row's weight is the product over children of the
    summed weights of compatible child rows; the answer count is the summed
    weight at the root.
    """
    weights: dict = {}
    order = tree.topological_order()
    for node in reversed(order):
        relation = tree.relations[node]
        node_weights = [1] * len(relation)
        for child in tree.children[node]:
            child_relation = tree.relations[child]
            shared = [
                c for c in relation.columns if c in child_relation._positions
            ]
            grouped: dict = {}
            get = grouped.get
            for key, weight in zip(
                child_relation._keys(shared), weights[child]
            ):
                grouped[key] = get(key, 0) + weight
            node_weights = [
                w * grouped.get(k, 0)
                for w, k in zip(node_weights, relation._keys(shared))
            ]
        weights[node] = node_weights
    return sum(weights[tree.root])


def _checked_tree(query: ConjunctiveQuery, database, ghd) -> JoinTree:
    if ghd is None:
        raise DecompositionMismatchError(
            "columnar evaluation requires a decomposition"
        )
    return build_columnar_bag_tree(query, database, ghd)


def columnar_boolean_answer(query: ConjunctiveQuery, database, ghd) -> bool:
    """BCQ through a GHD, columnar-side (Proposition 2.2 upper bound)."""
    if not query.atoms:
        return True
    return yannakakis_boolean(_checked_tree(query, database, ghd))


def columnar_enumerate_answers(
    query: ConjunctiveQuery, database, ghd
) -> set[tuple]:
    """``q(D)`` through a GHD: columnar Yannakakis, ids decoded exactly once
    at the boundary."""
    if not query.atoms:
        return {()}
    tree = _checked_tree(query, database, ghd)
    if not query.free_variables:
        return {()} if yannakakis_boolean(tree) else set()
    result = yannakakis_full(tree, output_columns=query.free_variables)
    return result.decode_rows()


def columnar_count_answers(query: ConjunctiveQuery, database, ghd) -> int:
    """#CQ for **full** CQs through a GHD via the factorized columnar DP —
    no result row is materialized (Proposition 4.14)."""
    if not query.is_full():
        raise ValueError("decomposition-based counting requires a full CQ")
    if not query.atoms:
        return 1
    return columnar_count_join_tree(_checked_tree(query, database, ghd))
