"""Pre-jigsaws (Definition 5.1): certificates, validation, planted instances.

A hypergraph ``H`` is an ``n x m`` *pre-jigsaw* if there are mappings
``pi : V(J) -> V(H)`` and ``o : E(J) -> 2^{E(H)}`` (``J`` the ``n x m``
jigsaw) such that

1. the images ``o(e)`` are pairwise disjoint,
2. every edge of ``H`` lies in some image ``o(e)``,
3. for any two vertices ``u, v`` in a common jigsaw edge ``e`` there is a
   fixed path ``P_{u,v}`` from ``pi(u)`` to ``pi(v)`` using only edges of
   ``o(e)`` and no ``pi``-image vertices other than its endpoints, and
4. every vertex of ``H`` is in the image of ``pi`` or on one of those paths.

Pre-jigsaws generalise jigsaws to degree > 2 (Theorem 5.2); every *degree-2*
pre-jigsaw dilutes back to the jigsaw by merging along the connecting paths,
which :func:`prejigsaw_to_jigsaw_dilution` implements.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.dilutions.operations import DeleteSubedge, DeleteVertex, MergeOnVertex
from repro.dilutions.sequence import DilutionSequence
from repro.hypergraphs.generators import jigsaw as make_jigsaw
from repro.hypergraphs.hypergraph import Hypergraph


@dataclass
class PreJigsawCertificate:
    """A certificate that ``hypergraph`` is an ``rows x cols`` pre-jigsaw.

    ``paths`` maps each unordered pair of jigsaw vertices sharing a jigsaw
    edge to the list of hypergraph vertices of the fixed path ``P_{u,v}``
    (including both endpoints ``pi(u)`` and ``pi(v)``).
    """

    rows: int
    cols: int
    hypergraph: Hypergraph
    pi: dict = field(default_factory=dict)
    o: dict = field(default_factory=dict)
    paths: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def jigsaw(self) -> Hypergraph:
        return make_jigsaw(self.rows, self.cols)

    def _normalised_o(self) -> dict:
        return {frozenset(e): frozenset(frozenset(f) for f in fs) for e, fs in self.o.items()}

    def path_vertices(self) -> frozenset:
        vertices: set = set()
        for path in self.paths.values():
            vertices.update(path)
        return frozenset(vertices)

    # ------------------------------------------------------------------
    # Validation of Definition 5.1
    # ------------------------------------------------------------------
    def images_disjoint(self) -> bool:
        seen: set = set()
        for edges in self._normalised_o().values():
            if edges & seen:
                return False
            seen.update(edges)
        return True

    def images_cover_all_edges(self) -> bool:
        covered: set = set()
        for edges in self._normalised_o().values():
            covered.update(edges)
        return covered == set(self.hypergraph.edges)

    def pi_total(self) -> bool:
        jigsaw_vertices = set(self.jigsaw.vertices)
        return set(self.pi) >= jigsaw_vertices and all(
            self.pi[v] in self.hypergraph.vertices for v in jigsaw_vertices
        )

    def paths_valid(self) -> bool:
        o_map = self._normalised_o()
        pi_image = frozenset(self.pi[v] for v in self.jigsaw.vertices)
        for jigsaw_edge in self.jigsaw.edges:
            members = sorted(jigsaw_edge, key=repr)
            for i, u in enumerate(members):
                for v in members[i + 1:]:
                    key = frozenset({u, v})
                    path = self.paths.get(key)
                    if path is None:
                        return False
                    if path[0] != self.pi[u] and path[0] != self.pi[v]:
                        return False
                    if path[-1] != self.pi[u] and path[-1] != self.pi[v]:
                        return False
                    if {path[0], path[-1]} != {self.pi[u], self.pi[v]} and self.pi[u] != self.pi[v]:
                        return False
                    interior = set(path[1:-1])
                    if interior & pi_image:
                        return False
                    if not self._path_uses_only(path, o_map[jigsaw_edge]):
                        return False
        return True

    def _path_uses_only(self, path: list, allowed_edges: frozenset) -> bool:
        for first, second in zip(path, path[1:]):
            if not any(first in e and second in e for e in allowed_edges):
                return False
        return True

    def vertices_covered(self) -> bool:
        pi_image = frozenset(self.pi[v] for v in self.jigsaw.vertices)
        return frozenset(self.hypergraph.vertices) <= pi_image | self.path_vertices()

    def is_valid(self) -> bool:
        return (
            self.pi_total()
            and self.images_disjoint()
            and self.images_cover_all_edges()
            and self.paths_valid()
            and self.vertices_covered()
        )


# ----------------------------------------------------------------------
# Constructions
# ----------------------------------------------------------------------
def jigsaw_as_prejigsaw(rows: int, cols: int) -> PreJigsawCertificate:
    """The trivial certificate: a jigsaw is a pre-jigsaw of itself
    (``pi`` the identity, each ``o(e) = {e}``, all paths single edges)."""
    hypergraph = make_jigsaw(rows, cols)
    pi = {v: v for v in hypergraph.vertices}
    o = {}
    paths = {}
    for edge in hypergraph.edges:
        o[edge] = frozenset({edge})
        members = sorted(edge, key=repr)
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                paths[frozenset({u, v})] = [u, v]
    return PreJigsawCertificate(rows, cols, hypergraph, pi, o, paths)


def planted_prejigsaw(rows: int, cols: int, degree: int = 2) -> PreJigsawCertificate:
    """A planted ``rows x cols`` pre-jigsaw of the requested degree (2 or 3).

    Each jigsaw edge ``e`` with vertices ``u_1, ..., u_k`` (k <= 4) is realised
    as two "half" hyperedges joined by a fresh *bridge* vertex ``y_e``:
    ``{pi(u_1), pi(u_2), y_e}`` and ``{y_e, pi(u_3), pi(u_4)}``; both halves
    are assigned to ``o(e)``.  Every pair of jigsaw vertices of ``e`` is then
    connected inside ``o(e)`` either directly (same half) or through the
    bridge, whose only other incidences stay inside the group — so the
    certificate satisfies all four conditions of Definition 5.1 with degree 2.

    With ``degree == 3`` an extra edge is added between the bridge vertices of
    horizontally adjacent groups (assigned to the left group), which raises
    their degree to 3 while preserving every pre-jigsaw condition — exactly
    the "edges touching other paths" phenomenon discussed after
    Definition 5.1, and the reason the merge-along-paths dilution to a jigsaw
    fails beyond degree 2.
    """
    if degree not in (2, 3):
        raise ValueError("planted pre-jigsaws support degree 2 or 3 only")
    if rows < 2 or cols < 2:
        raise ValueError("planted pre-jigsaws require rows >= 2 and cols >= 2")
    if degree == 3 and rows * cols <= 4:
        raise ValueError(
            "degree-3 pre-jigsaws need a jigsaw edge with more than two "
            "vertices (rows * cols > 4) so that bridge vertices exist"
        )
    base = make_jigsaw(rows, cols)
    pi = {v: ("pi", v) for v in base.vertices}
    o: dict = {}
    paths: dict = {}
    edges: list = []
    bridge_of: dict = {}
    for jigsaw_edge in base.edge_list():
        members = sorted(jigsaw_edge, key=repr)
        group: list = []
        key = tuple(sorted(map(repr, jigsaw_edge)))
        if len(members) <= 2:
            # Small boundary edges fit in a single hyperedge, no bridge needed.
            group.append(frozenset(pi[u] for u in members))
            for i, u in enumerate(members):
                for v in members[i + 1:]:
                    paths[frozenset({u, v})] = [pi[u], pi[v]]
        else:
            bridge = ("bridge", key)
            bridge_of[jigsaw_edge] = bridge
            first_half = members[:2]
            second_half = members[2:]
            half_a = frozenset({pi[u] for u in first_half} | {bridge})
            half_b = frozenset({pi[u] for u in second_half} | {bridge})
            group.extend([half_a, half_b])
            for i, u in enumerate(members):
                for v in members[i + 1:]:
                    same_half = (u in first_half) == (v in first_half)
                    if same_half:
                        paths[frozenset({u, v})] = [pi[u], pi[v]]
                    else:
                        paths[frozenset({u, v})] = [pi[u], bridge, pi[v]]
        edges.extend(group)
        o[jigsaw_edge] = frozenset(group)
    if degree == 3:
        # Extra edges between bridges of horizontally adjacent groups.  Each
        # bridge participates in at most one extra edge so the degree stays
        # exactly 3.
        from repro.hypergraphs.generators import jigsaw_edge_of

        used_bridges: set = set()
        for i in range(rows):
            for j in range(cols - 1):
                left = jigsaw_edge_of(rows, cols, (i, j))
                right = jigsaw_edge_of(rows, cols, (i, j + 1))
                if left not in bridge_of or right not in bridge_of:
                    continue
                if bridge_of[left] in used_bridges or bridge_of[right] in used_bridges:
                    continue
                extra = frozenset({bridge_of[left], bridge_of[right]})
                edges.append(extra)
                o[left] = o[left] | {extra}
                used_bridges.update(extra)
    hypergraph = Hypergraph(edges=edges)
    return PreJigsawCertificate(rows, cols, hypergraph, pi, o, paths)


def prejigsaw_to_jigsaw_dilution(
    certificate: PreJigsawCertificate,
) -> tuple[DilutionSequence, Hypergraph] | None:
    """For a *degree-2* pre-jigsaw, the dilution to the ``rows x cols`` jigsaw.

    Merging on every interior path vertex collapses each group ``o(e)`` into a
    single edge containing the ``pi``-images of ``e``'s jigsaw vertices;
    deleting any leftover non-image vertices and empty subedges yields the
    jigsaw (Section 5 notes this merging is exactly what fails for degree
    greater than 2, so the function returns ``None`` in that case).
    """
    hypergraph = certificate.hypergraph
    if hypergraph.degree() > 2:
        return None
    pi_image = frozenset(certificate.pi[v] for v in certificate.jigsaw.vertices)
    operations = []
    current = hypergraph
    interior = sorted(
        (v for v in certificate.path_vertices() if v not in pi_image),
        key=repr,
    )
    for vertex in interior:
        if vertex not in current.vertices:
            continue
        operation = MergeOnVertex(vertex)
        operations.append(operation)
        current = operation.apply(current)
    for vertex in sorted(current.vertices, key=repr):
        if vertex in pi_image:
            continue
        operation = DeleteVertex(vertex)
        operations.append(operation)
        current = operation.apply(current)
    while current.has_empty_edge() and current.num_edges > 1:
        operation = DeleteSubedge(frozenset())
        operations.append(operation)
        current = operation.apply(current)
    return DilutionSequence(operations), current
