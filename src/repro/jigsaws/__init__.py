"""Jigsaw hypergraphs, pre-jigsaws, and the excluded-grid pipeline.

The ``n x m`` jigsaw (Definition 4.2) is the hypergraph dual of the grid
graph; it is the highly connected forbidden substructure of the paper's
Excluded-Grid analogue (Theorem 4.7).  Pre-jigsaws (Definition 5.1) are the
bounded-degree generalisation of Section 5.
"""

from repro.jigsaws.jigsaw import (
    is_jigsaw,
    jigsaw,
    jigsaw_column_reduction_sequence,
    jigsaw_dimension,
)
from repro.jigsaws.prejigsaw import (
    PreJigsawCertificate,
    jigsaw_as_prejigsaw,
    planted_prejigsaw,
    prejigsaw_to_jigsaw_dilution,
)
from repro.jigsaws.excluded_grid import (
    JigsawDilutionCertificate,
    dilute_to_jigsaw,
    largest_jigsaw_dilution,
    planted_thickened_jigsaw_minor,
)

__all__ = [
    "jigsaw",
    "is_jigsaw",
    "jigsaw_dimension",
    "jigsaw_column_reduction_sequence",
    "PreJigsawCertificate",
    "jigsaw_as_prejigsaw",
    "planted_prejigsaw",
    "prejigsaw_to_jigsaw_dilution",
    "JigsawDilutionCertificate",
    "dilute_to_jigsaw",
    "largest_jigsaw_dilution",
    "planted_thickened_jigsaw_minor",
]
