"""Jigsaw hypergraphs (Definition 4.2): construction, recognition, reductions.

An ``n x m`` jigsaw has one edge ``e_{i,j}`` per grid position, every vertex
has degree 2, and ``|e_{i,j} ∩ e_{i+1,j}| = |e_{i,j} ∩ e_{i,j+1}| = 1`` with no
other intersections; it is the hypergraph dual of the ``n x m`` grid graph and
is unique up to isomorphism.  The paper also notes that the ``n x m`` jigsaw
dilutes to the ``n x (m-1)`` jigsaw — :func:`jigsaw_column_reduction_sequence`
produces the witnessing sequence.
"""

from __future__ import annotations

from repro.dilutions.operations import DeleteSubedge, DeleteVertex
from repro.dilutions.sequence import DilutionSequence
from repro.hypergraphs.duality import dual_hypergraph
from repro.hypergraphs.generators import jigsaw as _jigsaw_generator
from repro.hypergraphs.graphs import grid_graph
from repro.hypergraphs.hypergraph import Hypergraph
from repro.hypergraphs.isomorphism import are_isomorphic


def jigsaw(rows: int, cols: int) -> Hypergraph:
    """The ``rows x cols`` jigsaw hypergraph (see
    :func:`repro.hypergraphs.generators.jigsaw`)."""
    return _jigsaw_generator(rows, cols)


def jigsaw_dimension(hypergraph: Hypergraph) -> tuple[int, int] | None:
    """The dimension ``(rows, cols)`` with ``rows <= cols`` if the hypergraph
    is a jigsaw, else ``None``.

    Recognition checks degree-2-ness, then compares the dual with candidate
    grid graphs whose area matches the number of edges.
    """
    if not hypergraph.edges:
        return None
    if any(hypergraph.degree(v) != 2 for v in hypergraph.vertices):
        return None
    num_edges = hypergraph.num_edges
    dual = dual_hypergraph(hypergraph)
    for rows in range(1, num_edges + 1):
        if num_edges % rows != 0:
            continue
        cols = num_edges // rows
        if rows > cols:
            break
        expected_vertices = rows * (cols - 1) + cols * (rows - 1)
        if hypergraph.num_vertices != expected_vertices:
            continue
        grid = grid_graph(rows, cols)
        if are_isomorphic(dual, Hypergraph(grid.vertices, grid.edges)):
            return (rows, cols)
    return None


def is_jigsaw(hypergraph: Hypergraph) -> bool:
    """True if the hypergraph is an ``n x m`` jigsaw for some dimension."""
    return jigsaw_dimension(hypergraph) is not None


def jigsaw_column_reduction_sequence(rows: int, cols: int) -> DilutionSequence:
    """A dilution sequence from the ``rows x cols`` jigsaw to the
    ``rows x (cols - 1)`` jigsaw (requires ``cols >= 2``).

    The last column's internal vertical connectors are deleted, which shrinks
    every last-column edge to the single horizontal connector it shares with
    column ``cols - 2``; those singleton edges are then proper subedges and
    are deleted; finally the now degree-1 horizontal connectors are deleted.
    """
    if cols < 2:
        raise ValueError("column reduction needs at least two columns")
    last = cols - 1
    operations = []
    # 1. Vertical connectors inside the last column.
    for i in range(rows - 1):
        operations.append(DeleteVertex(("v", i, last)))
    # 2. The last-column edges have shrunk to {("h", i, last-1)}; delete them
    #    as subedges of their left neighbours.
    for i in range(rows):
        operations.append(DeleteSubedge(frozenset({("h", i, last - 1)})))
    # 3. The horizontal connectors into the deleted column now have degree 1.
    for i in range(rows):
        operations.append(DeleteVertex(("h", i, last - 1)))
    return DilutionSequence(operations)


def verify_jigsaw_properties(hypergraph: Hypergraph, rows: int, cols: int) -> dict:
    """Check the defining properties of Definition 4.2 for an alleged
    ``rows x cols`` jigsaw; returns a dict of named boolean checks."""
    expected_edges = rows * cols
    degree_two = all(hypergraph.degree(v) == 2 for v in hypergraph.vertices)
    edge_count_ok = hypergraph.num_edges == expected_edges
    # Intersection profile: count pairs of edges by intersection size.
    intersections = {}
    edges = hypergraph.edge_list()
    for i, e in enumerate(edges):
        for f in edges[i + 1:]:
            size = len(e & f)
            if size:
                intersections[size] = intersections.get(size, 0) + 1
    expected_adjacent_pairs = rows * (cols - 1) + cols * (rows - 1)
    singles_ok = intersections.get(1, 0) == expected_adjacent_pairs
    no_large_intersections = all(size <= 1 for size in intersections)
    dual_is_grid = are_isomorphic(
        dual_hypergraph(hypergraph),
        Hypergraph(grid_graph(rows, cols).vertices, grid_graph(rows, cols).edges),
    ) if hypergraph.edges else False
    return {
        "degree_two": degree_two,
        "edge_count": edge_count_ok,
        "adjacent_intersections": singles_ok,
        "no_large_intersections": no_large_intersections,
        "dual_is_grid": dual_is_grid,
    }
