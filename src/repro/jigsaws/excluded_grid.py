"""The Theorem 4.7 pipeline: from high-ghw degree-2 hypergraphs to jigsaws.

Theorem 4.7 (the degree-2 Excluded Grid analogue) is proved by chaining

1. Lemma 3.6 — reduce the hypergraph (a dilution);
2. Lemma 4.6 — high ghw forces high treewidth of the dual;
3. Proposition 4.5 (Excluded Grid Theorem) — high treewidth of the dual
   yields a large grid minor of the dual;
4. Lemma 4.4 — a grid minor of the dual pulls back to a jigsaw dilution.

This module executes exactly that chain on concrete hypergraphs, replacing
the (non-constructive, astronomically bounded) Excluded Grid step by actual
grid-minor *search* (:mod:`repro.minors.grid_minor`): the result is a
:class:`JigsawDilutionCertificate` carrying every intermediate object so the
tests and the benches can validate each step independently.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dilutions.sequence import DilutionSequence
from repro.hypergraphs.duality import dual_hypergraph
from repro.hypergraphs.generators import jigsaw as make_jigsaw
from repro.hypergraphs.graphs import grid_graph
from repro.hypergraphs.hypergraph import Hypergraph
from repro.hypergraphs.isomorphism import are_isomorphic
from repro.hypergraphs.reduction import reduce_hypergraph, reduction_dilution_sequence
from repro.minors.grid_minor import find_grid_minor
from repro.minors.minor_map import MinorMap
from repro.structure.lemma44 import dilution_from_dual_minor


@dataclass
class JigsawDilutionCertificate:
    """Everything produced by one run of the Theorem 4.7 pipeline."""

    source: Hypergraph
    reduced: Hypergraph
    dual: Hypergraph
    grid_minor: MinorMap
    sequence: DilutionSequence
    result: Hypergraph
    rows: int
    cols: int

    def jigsaw(self) -> Hypergraph:
        return make_jigsaw(self.rows, self.cols)

    def result_is_jigsaw(self) -> bool:
        """Does the dilution result match the target jigsaw up to isomorphism?"""
        return are_isomorphic(self.result, self.jigsaw())

    def sequence_replays(self) -> bool:
        """Does replaying the sequence from the source reach the recorded result?"""
        return self.sequence.apply(self.source) == self.result


def dilute_to_jigsaw(
    hypergraph: Hypergraph,
    rows: int,
    cols: int | None = None,
    max_nodes: int = 300_000,
    minor: MinorMap | None = None,
) -> JigsawDilutionCertificate | None:
    """Try to dilute a degree-2 hypergraph to the ``rows x cols`` jigsaw.

    Returns a full certificate (reduction, dual, grid minor, dilution
    sequence, resulting hypergraph) or ``None`` when no grid minor of the
    requested dimension was found within the search budget.

    A precomputed ``minor`` map of the grid into the dual of the *reduced*
    hypergraph (branch sets = sets of edges of the reduced hypergraph) can be
    supplied to skip the expensive search, e.g. the planted map of
    :func:`planted_thickened_jigsaw_minor` — the Lemma 4.4 construction and
    all downstream checks still run in full.
    """
    if cols is None:
        cols = rows
    if hypergraph.degree() > 2:
        raise ValueError("the Theorem 4.7 pipeline applies to degree-2 hypergraphs")
    reduction_sequence = reduction_dilution_sequence(hypergraph)
    reduced = reduction_sequence.apply(hypergraph)
    if not reduced.edges:
        return None
    dual = dual_hypergraph(reduced)
    if minor is None:
        minor = find_grid_minor(dual, rows, cols, max_nodes=max_nodes)
    if minor is None:
        return None
    pattern = grid_graph(rows, cols)
    lemma44 = dilution_from_dual_minor(reduced, pattern, minor)
    sequence = reduction_sequence + lemma44.sequence
    result = lemma44.result
    return JigsawDilutionCertificate(
        source=hypergraph,
        reduced=reduced,
        dual=dual,
        grid_minor=minor,
        sequence=sequence,
        result=result,
        rows=rows,
        cols=cols,
    )


def planted_thickened_jigsaw_minor(rows: int, cols: int) -> tuple[Hypergraph, MinorMap]:
    """The thickened ``rows x cols`` jigsaw together with the planted grid
    minor map of its dual.

    The branch set of grid vertex ``(i, j)`` consists of the big edge
    realising ``e_{i,j}`` plus the connector edges for its "right" and "down"
    jigsaw vertices; branch sets are connected, pairwise disjoint, and
    adjacent branch sets share a connector/big-edge intersection, so the map
    is a valid minor map into the dual.  Using it lets the Theorem 4.7
    pipeline run on dimensions where blind grid-minor search would be too
    slow, while every downstream construction is still verified.
    """
    from repro.hypergraphs.generators import thickened_jigsaw_with_structure

    hypergraph, big_edge_of, connector_of = thickened_jigsaw_with_structure(rows, cols)
    dual = dual_hypergraph(hypergraph)
    pattern = grid_graph(rows, cols)
    mapping = {}
    for i in range(rows):
        for j in range(cols):
            branch = {big_edge_of[(i, j)]}
            if j + 1 < cols and ("h", i, j) in connector_of:
                branch.add(connector_of[("h", i, j)])
            if i + 1 < rows and ("v", i, j) in connector_of:
                branch.add(connector_of[("v", i, j)])
            mapping[(i, j)] = frozenset(branch)
    return hypergraph, MinorMap(pattern, dual, mapping)


def largest_jigsaw_dilution(
    hypergraph: Hypergraph, max_dimension: int = 4, max_nodes: int = 200_000
) -> JigsawDilutionCertificate | None:
    """The largest ``n x n`` jigsaw dilution certificate found for ``n`` up to
    ``max_dimension`` (``None`` if not even the 1 x 1 jigsaw is reachable)."""
    best = None
    for n in range(1, max_dimension + 1):
        certificate = dilute_to_jigsaw(hypergraph, n, max_nodes=max_nodes)
        if certificate is None or not certificate.result_is_jigsaw():
            break
        best = certificate
    return best
