"""A synthetic stand-in for the HyperBench corpus (Table 1, Appendix A).

The paper's only quantitative table counts, among the 3649 HyperBench
hypergraphs, how many of the 932 degree-2 ones have ghw above k for
k = 1..5.  HyperBench itself (CQ and CSP hypergraphs harvested from
applications and synthetic generators) is not available offline, so this
module synthesises a corpus of the same flavour:

* *application-like* families — duals of sparse random graphs (the canonical
  way degree-2 hypergraphs arise from CSPs), duals of partial k-trees
  (bounded ghw), hyper-cycles and acyclic "query-shaped" hypergraphs;
* *structured high-width* families — jigsaws and thickened jigsaws, whose ghw
  grows with their dimension (Section 4.2's argument gives the planted lower
  bound, Lemma 4.6 the matching upper bound);
* a sprinkle of *non-degree-2* hypergraphs (stars, cliques, random acyclic) so
  that, as in HyperBench, degree-2 instances are a strict subset of the
  corpus.

Every entry carries provenance and *certified* ghw bounds: planted bounds
from the construction (recorded with their justification) refined by the
computed bounds of :mod:`repro.widths.ghw`.  The Table 1 regeneration then
reports, per threshold k, the number of degree-2 entries whose certified
lower bound exceeds k — the same semantics as the paper's table (which relies
on HyperBench's exact ghw computations).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.hypergraphs import generators
from repro.hypergraphs.duality import dual_hypergraph
from repro.hypergraphs.hypergraph import Hypergraph
from repro.hypergraphs.properties import is_alpha_acyclic
from repro.widths.ghw import ghw_lower_bound, ghw_upper_bound
from repro.widths.treewidth import treewidth_upper_bound


@dataclass
class CorpusEntry:
    """One hypergraph of the corpus, with provenance and certified bounds."""

    name: str
    family: str
    provenance: str  # "application-like" or "synthetic"
    hypergraph: Hypergraph
    ghw_lower: int
    ghw_upper: int
    notes: str = ""
    extra: dict = field(default_factory=dict)

    @property
    def degree(self) -> int:
        return self.hypergraph.degree()

    @property
    def is_degree_two(self) -> bool:
        return self.degree <= 2


def _bounded_ghw_entry(
    name: str,
    family: str,
    provenance: str,
    hypergraph: Hypergraph,
    planted_lower: int | None = None,
    planted_upper: int | None = None,
    notes: str = "",
    separator_budget: int = 0,
) -> CorpusEntry:
    """Assemble an entry, combining planted and computed bounds."""
    lower = 1 if is_alpha_acyclic(hypergraph) else 2
    upper = None
    if planted_lower is not None:
        lower = max(lower, planted_lower)
    if separator_budget > 0:
        lower = max(lower, ghw_lower_bound(hypergraph, separator_budget=separator_budget))
    if planted_upper is not None:
        upper = planted_upper
    if upper is None:
        upper = ghw_upper_bound(hypergraph).upper
    upper = max(upper, lower)
    return CorpusEntry(
        name=name,
        family=family,
        provenance=provenance,
        hypergraph=hypergraph,
        ghw_lower=lower,
        ghw_upper=upper,
        notes=notes,
    )


def generate_corpus(seed: int = 0, scale: float = 1.0) -> list[CorpusEntry]:
    """Generate the synthetic corpus.

    ``scale = 1.0`` produces a corpus whose degree-2 sub-population is
    comparable in size to HyperBench's (~900 hypergraphs); smaller scales are
    used by the tests to keep runtimes low.  Generation is deterministic in
    ``seed``.
    """
    rng = random.Random(seed)
    entries: list[CorpusEntry] = []

    def count(base: int) -> int:
        return max(1, int(round(base * scale)))

    def jigsaw_dimension_sample() -> int:
        # Weighted towards large dimensions so that the certified-ghw profile
        # of the degree-2 sub-population has the fat tail Table 1 reports
        # (HyperBench's degree-2 CSP hypergraphs are dominated by instances of
        # ghw well above 5).
        dims = [2, 3, 4, 5, 6, 7, 8, 9]
        weights = [7, 7, 6, 7, 25, 20, 18, 10]
        return rng.choices(dims, weights=weights, k=1)[0]

    # ------------------------------------------------------------------
    # 1. Acyclic, degree-2 "query-shaped" hypergraphs (ghw = 1).
    for index in range(count(280)):
        length = rng.randint(2, 12)
        arity = rng.randint(2, 4)
        hypergraph = generators.hyperpath(length, edge_size=arity)
        entries.append(
            _bounded_ghw_entry(
                f"chain-{index}",
                family="chain",
                provenance="application-like",
                hypergraph=hypergraph,
                planted_upper=1,
                notes="path of atoms; alpha-acyclic by construction",
            )
        )

    # 2. Hyper-cycles (degree 2, ghw = 2).
    for index in range(count(60)):
        length = rng.randint(3, 14)
        arity = rng.randint(2, 4)
        hypergraph = generators.hypercycle(length, edge_size=arity)
        entries.append(
            _bounded_ghw_entry(
                f"cycle-{index}",
                family="cycle",
                provenance="application-like",
                hypergraph=hypergraph,
                planted_lower=2,
                planted_upper=2,
                notes="cycle of atoms; ghw exactly 2",
            )
        )

    # 3. Duals of sparse random graphs (degree 2, moderate ghw).
    for index in range(count(120)):
        n = rng.randint(6, 14)
        p = rng.uniform(0.25, 0.6)
        graph = generators.erdos_renyi_graph(n, p, seed=rng.randint(0, 10**9))
        alive = [v for v in graph.vertices if graph.degree(v) > 0]
        if len(alive) < 3:
            continue
        trimmed = graph.induced_subhypergraph(alive)
        hypergraph = dual_hypergraph(trimmed)
        # Lemma 4.6: ghw(dual) <= tw(graph) + 1 (the dual of the dual is the
        # graph again for reduced inputs).
        upper = treewidth_upper_bound(trimmed).upper + 1
        entries.append(
            _bounded_ghw_entry(
                f"csp-dual-{index}",
                family="dual-of-random-graph",
                provenance="application-like",
                hypergraph=hypergraph,
                planted_upper=upper,
                notes="dual of G(n, p); CSP-style degree-2 hypergraph",
                separator_budget=2,
            )
        )

    # 4. Duals of partial k-trees (degree 2, bounded ghw <= k + 1).
    for index in range(count(40)):
        n = rng.randint(8, 16)
        width = rng.randint(1, 4)
        graph = generators.random_graph_with_treewidth_at_most(
            n, width, seed=rng.randint(0, 10**9)
        )
        alive = [v for v in graph.vertices if graph.degree(v) > 0]
        if len(alive) < 3:
            continue
        trimmed = graph.induced_subhypergraph(alive)
        hypergraph = dual_hypergraph(trimmed)
        entries.append(
            _bounded_ghw_entry(
                f"ktree-dual-{index}",
                family="dual-of-partial-k-tree",
                provenance="synthetic",
                hypergraph=hypergraph,
                planted_upper=width + 1,
                notes=f"dual of a partial {width}-tree; ghw <= {width + 1} by Lemma 4.6",
            )
        )

    # 5. Jigsaws (degree 2, ghw >= min dimension — Section 4.2).
    for index in range(count(280)):
        rows = jigsaw_dimension_sample()
        cols = min(9, rows + rng.randint(0, 2))
        hypergraph = generators.jigsaw(rows, cols)
        dim = min(rows, cols)
        entries.append(
            _bounded_ghw_entry(
                f"jigsaw-{rows}x{cols}-{index}",
                family="jigsaw",
                provenance="synthetic",
                hypergraph=hypergraph,
                planted_lower=dim,
                planted_upper=dim + 1,
                notes="n x m jigsaw; ghw >= min(n, m) by the balanced separator argument",
            )
        )

    # 6. Thickened jigsaws (degree 2; dilute to jigsaws, so ghw >= dimension
    #    by Lemma 3.2(3), and ghw <= dim + 1 via the dual construction).
    for index in range(count(150)):
        rows = min(7, jigsaw_dimension_sample())
        cols = min(7, rows + rng.randint(0, 1))
        hypergraph = generators.thickened_jigsaw(rows, cols)
        dim = min(rows, cols)
        entries.append(
            _bounded_ghw_entry(
                f"thickened-{rows}x{cols}-{index}",
                family="thickened-jigsaw",
                provenance="synthetic",
                hypergraph=hypergraph,
                planted_lower=dim,
                planted_upper=dim + 1,
                notes="dilutes to the jigsaw, so Lemma 3.2(3) transfers the lower bound",
            )
        )

    # 7. Non-degree-2 padding: stars, cliques-as-hypergraphs, random acyclic.
    for index in range(count(90)):
        branches = rng.randint(3, 10)
        entries.append(
            _bounded_ghw_entry(
                f"star-{index}",
                family="star",
                provenance="application-like",
                hypergraph=generators.star_hypergraph(branches, edge_size=rng.randint(2, 4)),
                planted_upper=1,
                notes="star query; acyclic but degree > 2",
            )
        )
    for index in range(count(80)):
        hypergraph = generators.random_acyclic_hypergraph(
            rng.randint(4, 12), max_rank=rng.randint(3, 5), seed=rng.randint(0, 10**9)
        )
        entries.append(
            _bounded_ghw_entry(
                f"acyclic-{index}",
                family="random-acyclic",
                provenance="application-like",
                hypergraph=hypergraph,
                planted_upper=1,
                notes="random alpha-acyclic hypergraph (degree usually > 2)",
            )
        )

    return entries


# ----------------------------------------------------------------------
# Statistics / Table 1
# ----------------------------------------------------------------------
def corpus_statistics(corpus: list[CorpusEntry]) -> dict:
    """Headline statistics mirroring the Appendix A discussion."""
    degree2 = [entry for entry in corpus if entry.is_degree_two]
    synthetic_degree2 = [e for e in degree2 if e.provenance == "synthetic"]
    return {
        "total": len(corpus),
        "degree2": len(degree2),
        "degree2_synthetic": len(synthetic_degree2),
        "degree2_application_like": len(degree2) - len(synthetic_degree2),
        "degree2_acyclic": sum(1 for e in degree2 if e.ghw_upper <= 1),
    }


def degree2_ghw_table(corpus: list[CorpusEntry], thresholds=(1, 2, 3, 4, 5)) -> list[tuple[int, int]]:
    """Table 1: number of degree-2 hypergraphs with (certified) ghw > k."""
    degree2 = [entry for entry in corpus if entry.is_degree_two]
    rows = []
    for k in thresholds:
        amount = sum(1 for entry in degree2 if entry.ghw_lower > k)
        rows.append((k, amount))
    return rows


def render_table1(corpus: list[CorpusEntry]) -> str:
    """A printable rendition of Table 1 for the benchmark output."""
    statistics = corpus_statistics(corpus)
    lines = [
        "Table 1 (reproduced): number of degree-2 hypergraphs with ghw > k",
        f"  corpus size: {statistics['total']} hypergraphs, "
        f"{statistics['degree2']} of degree 2 "
        f"({statistics['degree2_synthetic']} synthetic)",
        "  k    amount",
    ]
    for k, amount in degree2_ghw_table(corpus):
        lines.append(f"  {k:<4} {amount}")
    return "\n".join(lines)
