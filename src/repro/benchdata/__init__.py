"""The HyperBench-substitute corpus used by the Table 1 experiment."""

from repro.benchdata.hyperbench import (
    CorpusEntry,
    corpus_statistics,
    degree2_ghw_table,
    generate_corpus,
    render_table1,
)

__all__ = [
    "CorpusEntry",
    "generate_corpus",
    "corpus_statistics",
    "degree2_ghw_table",
    "render_table1",
]
