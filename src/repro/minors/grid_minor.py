"""Grid-minor search.

The Excluded Grid Theorem (Proposition 4.5) guarantees that graphs of large
treewidth contain large grid minors, but its proof is far beyond the scope of
an executable reproduction; what the pipeline of Theorem 4.7 actually needs is
to *find* a grid minor in concrete dual hypergraphs.  This module provides:

* :func:`suppress_low_degree_vertices` — a structure-aware preprocessing step
  that contracts degree-1/degree-2 vertices into neighbours (a sequence of
  legitimate minor operations) while remembering the branch sets;
* :func:`find_grid_minor` — tries an isomorphism/fast path on the suppressed
  graph, then falls back to the generic backtracking search of
  :mod:`repro.minors.search`, and composes branch sets so the returned
  :class:`MinorMap` always refers to the original host;
* :func:`largest_grid_minor_dimension` — the largest ``n`` such that an
  ``n x n`` grid minor was found within a budget.
"""

from __future__ import annotations

from repro.hypergraphs.graphs import Graph, grid_graph
from repro.hypergraphs.hypergraph import Hypergraph
from repro.hypergraphs.isomorphism import find_isomorphism
from repro.minors.minor_map import MinorMap
from repro.minors.search import MinorSearchBudgetExceeded, find_minor_map


def _as_simple_graph(host: Hypergraph) -> Graph:
    """The host's adjacency as a simple graph (singleton edges dropped,
    larger edges expanded into cliques)."""
    edges = set()
    for edge in host.edges:
        members = sorted(edge, key=repr)
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                edges.add(frozenset({u, v}))
    return Graph(host.vertices, edges)


def suppress_low_degree_vertices(host: Hypergraph) -> tuple[Graph, dict]:
    """Contract away "subdivision-like" vertices, tracking branch sets.

    A degree-2 vertex is contracted into a neighbour only when that neighbour
    has degree at least 3 — this removes subdivision vertices (such as the
    connector edges of thickened jigsaws, seen from the dual) while leaving
    genuine low-degree branch vertices like the corners of a grid alone.
    Degree-0 and degree-1 vertices are deleted outright.  The preprocessing is
    a heuristic fast path: contractions are legitimate minor operations, so a
    minor of the reduced graph is always a minor of the host, but the converse
    can fail in contrived cases — :func:`find_grid_minor` therefore falls back
    to searching the raw host when the fast path finds nothing.

    Returns ``(reduced_graph, branches)`` where ``branches`` maps every vertex
    of the reduced graph to the frozenset of original host vertices it now
    represents.
    """
    graph = _as_simple_graph(host)
    branches: dict = {v: frozenset({v}) for v in graph.vertices}
    changed = True
    while changed:
        changed = False
        for vertex in sorted(graph.vertices, key=repr):
            degree = graph.degree(vertex)
            if degree > 2:
                continue
            neighbours = sorted(graph.neighbours(vertex), key=repr)
            if degree == 0:
                if len(graph.vertices) > 1:
                    graph = Graph(graph.vertices - {vertex}, graph.edges)
                    branches.pop(vertex, None)
                    changed = True
                    break
                continue
            if degree == 1:
                graph = graph.delete_graph_vertex(vertex)
                branches.pop(vertex, None)
                changed = True
                break
            # degree == 2: contract only into a neighbour of degree >= 3.
            first, second = neighbours
            if graph.has_edge(first, second):
                # Contracting would create a parallel edge; delete instead
                # (the triangle keeps first-second adjacent, so no minor is lost).
                graph = graph.delete_graph_vertex(vertex)
                branches.pop(vertex, None)
                changed = True
                break
            target = None
            if graph.degree(first) >= 3:
                target = first
            elif graph.degree(second) >= 3:
                target = second
            if target is None:
                continue
            other = second if target == first else first
            new_edges = [e for e in graph.edges if vertex not in e]
            new_edges.append(frozenset({target, other}))
            graph = Graph(graph.vertices - {vertex}, new_edges)
            branches[target] = branches[target] | branches.pop(vertex)
            changed = True
            break
    branches = {v: branches[v] for v in graph.vertices}
    return graph, branches


def find_grid_minor(
    host: Hypergraph,
    rows: int,
    cols: int | None = None,
    max_nodes: int = 500_000,
) -> MinorMap | None:
    """A minor map of the ``rows x cols`` grid into ``host``, or ``None``.

    Strategy: suppress low-degree vertices (recording branch sets), try a
    direct isomorphism between the suppressed graph and the grid, then fall
    back to the generic backtracking search on the suppressed graph, and
    finally on the raw host.  Branch sets are composed so the returned map is
    a valid minor map into the *original* host.
    """
    if cols is None:
        cols = rows
    pattern = grid_graph(rows, cols)
    host_graph = _as_simple_graph(host)

    # Fast path 1: the host graph itself is (isomorphic to) the grid.
    direct = _isomorphism_as_minor_map(pattern, host_graph)
    if direct is not None:
        return MinorMap(pattern, host_graph, direct.mapping)

    # Fast path 2: suppress low-degree vertices and try again.
    reduced, branches = suppress_low_degree_vertices(host)
    via_reduction = _isomorphism_as_minor_map(pattern, reduced)
    candidate = via_reduction
    if candidate is None:
        slack = max(1, reduced.num_vertices - pattern.num_vertices + 1)
        branch_cap = min(slack, 4)
        try:
            candidate = find_minor_map(
                pattern, reduced, max_branch_size=branch_cap, max_nodes=max_nodes
            )
        except MinorSearchBudgetExceeded:
            candidate = None
    if candidate is not None:
        composed = {
            v: frozenset().union(*(branches[w] for w in branch))
            for v, branch in candidate.mapping.items()
        }
        composed_map = MinorMap(pattern, host_graph, composed)
        if composed_map.is_valid():
            return composed_map

    # Last resort: generic search on the raw host graph (kept on a tight
    # budget — large instances should go through planted structure instead).
    try:
        return find_minor_map(
            pattern,
            host_graph,
            max_branch_size=min(max(1, host_graph.num_vertices - pattern.num_vertices + 1), 4),
            max_nodes=min(max_nodes, 100_000),
        )
    except MinorSearchBudgetExceeded:
        return None


def _isomorphism_as_minor_map(pattern: Graph, host: Graph) -> MinorMap | None:
    """If pattern and host are isomorphic graphs, the isomorphism viewed as a
    minor map with singleton branch sets."""
    if pattern.num_vertices != host.num_vertices or pattern.num_edges != host.num_edges:
        return None
    mapping = find_isomorphism(
        Hypergraph(pattern.vertices, pattern.edges),
        Hypergraph(host.vertices, host.edges),
    )
    if mapping is None:
        return None
    return MinorMap(pattern, host, {v: frozenset({mapping[v]}) for v in pattern.vertices})


def largest_grid_minor_dimension(
    host: Hypergraph, max_dimension: int = 5, max_nodes: int = 200_000
) -> int:
    """The largest ``n <= max_dimension`` for which an ``n x n`` grid minor
    was found (0 if not even the 1x1 grid, i.e. the host has no vertices)."""
    best = 0
    for n in range(1, max_dimension + 1):
        if find_grid_minor(host, n, max_nodes=max_nodes) is None:
            break
        best = n
    return best
