"""Minor maps (Section 2) with full validation.

A graph ``G`` is a minor of a graph ``F`` if there is a map
``mu : V(G) -> 2^{V(F)}`` such that

1. every image ``mu(v)`` (the *branch set*) is connected in ``F``,
2. distinct branch sets are disjoint, and
3. for every edge ``{u, v}`` of ``G`` there is an edge of ``F`` joining
   ``mu(u)`` and ``mu(v)``.

Minor maps are used here both on plain graphs and on the primal graphs of
duals of hypergraphs (where ``F`` may be a rank-2 hypergraph); the validation
therefore works against any hypergraph host, with "connected" and "adjacent"
interpreted through shared hyperedges.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping

from repro.hypergraphs.hypergraph import Hypergraph

Vertex = Hashable


class MinorMap:
    """A candidate minor map ``mu`` from a pattern graph into a host.

    Parameters
    ----------
    pattern:
        The graph ``G`` (any 2-uniform hypergraph or :class:`Graph`).
    host:
        The host ``F`` — a graph, or more generally a hypergraph whose
        adjacency is induced by shared edges.
    mapping:
        Mapping from pattern vertices to iterables of host vertices.
    """

    def __init__(
        self,
        pattern: Hypergraph,
        host: Hypergraph,
        mapping: Mapping[Vertex, Iterable[Vertex]],
    ) -> None:
        self.pattern = pattern
        self.host = host
        self.mapping: dict[Vertex, frozenset] = {
            v: frozenset(branch) for v, branch in mapping.items()
        }

    # ------------------------------------------------------------------
    def branch_set(self, vertex: Vertex) -> frozenset:
        return self.mapping[vertex]

    def is_onto(self) -> bool:
        """True if the branch sets cover every host vertex."""
        covered: set = set()
        for branch in self.mapping.values():
            covered.update(branch)
        return covered == set(self.host.vertices)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def covers_all_pattern_vertices(self) -> bool:
        return set(self.mapping) == set(self.pattern.vertices)

    def branch_sets_nonempty(self) -> bool:
        return all(self.mapping[v] for v in self.mapping)

    def branch_sets_in_host(self) -> bool:
        return all(branch <= self.host.vertices for branch in self.mapping.values())

    def branch_sets_connected(self) -> bool:
        for branch in self.mapping.values():
            if not branch:
                return False
            induced = self.host.induced_subhypergraph(branch)
            # Induced subhypergraph drops isolated vertices from edges only;
            # connectivity must consider all branch vertices.
            components = induced.connected_components()
            isolated = branch - induced.vertices
            if isolated and len(branch) > 1:
                return False
            if len(components) > 1:
                return False
        return True

    def branch_sets_disjoint(self) -> bool:
        seen: set = set()
        for branch in self.mapping.values():
            if branch & seen:
                return False
            seen.update(branch)
        return True

    def adjacency_witnessed(self) -> bool:
        for edge in self.pattern.edges:
            if len(edge) != 2:
                return False
            u, v = tuple(edge)
            if not self._host_edge_between(self.mapping[u], self.mapping[v]):
                return False
        return True

    def _host_edge_between(self, first: frozenset, second: frozenset) -> bool:
        for edge in self.host.edges:
            if edge & first and edge & second:
                return True
        return False

    def is_valid(self) -> bool:
        """Check all minor-map conditions."""
        return (
            self.covers_all_pattern_vertices()
            and self.branch_sets_nonempty()
            and self.branch_sets_in_host()
            and self.branch_sets_disjoint()
            and self.branch_sets_connected()
            and self.adjacency_witnessed()
        )

    def __repr__(self) -> str:
        return (
            f"MinorMap(pattern={self.pattern.num_vertices} vertices, "
            f"host={self.host.num_vertices} vertices, valid={self.is_valid()})"
        )
