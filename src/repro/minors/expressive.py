"""Expressive minors (Definition D.1, Appendix D).

An *expressive minor map* is a minor map ``mu`` of a graph ``G`` into (the
primal graph of) a hypergraph ``H`` together with an injective edge map
``rho : E(G) -> E(H)`` such that

1. ``rho`` is injective,
2. ``rho({u, v})`` intersects both branch sets ``mu(u)`` and ``mu(v)``, and
3. for incident pattern edges ``e1, e2`` sharing ``v`` there is a path from
   ``rho(e1)`` to ``rho(e2)`` that uses only vertices of ``mu(v)`` and avoids
   every other marked edge ``rho(E(G))``.

Expressive minors retain edge structure that ordinary Gaifman-graph minors
lose (a huge hyperedge would otherwise swallow entire grid blocks); they are
the engine behind the bounded-degree pre-jigsaw theorem (Theorem 5.2 via
Lemmas D.2 and D.4).  This module provides the certificate object with a full
validator plus a helper that derives an expressive minor map in the easy case
where the hypergraph is 2-uniform (every ordinary minor is then expressive,
as noted after Definition D.1).
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.hypergraphs.hypergraph import Hypergraph
from repro.minors.minor_map import MinorMap


class ExpressiveMinorMap:
    """A candidate expressive minor map with validation.

    Parameters
    ----------
    minor_map:
        The underlying :class:`MinorMap` of the pattern graph into the
        hypergraph ``H`` (branch sets are sets of vertices of ``H``).
    edge_map:
        Mapping from pattern edges (frozensets of two pattern vertices) to
        hyperedges of ``H``.
    """

    def __init__(self, minor_map: MinorMap, edge_map: Mapping[frozenset, frozenset]) -> None:
        self.minor_map = minor_map
        self.edge_map: dict[frozenset, frozenset] = {
            frozenset(e): frozenset(f) for e, f in edge_map.items()
        }

    # ------------------------------------------------------------------
    @property
    def pattern(self) -> Hypergraph:
        return self.minor_map.pattern

    @property
    def host(self) -> Hypergraph:
        return self.minor_map.host

    def marked_edges(self) -> frozenset:
        return frozenset(self.edge_map.values())

    # ------------------------------------------------------------------
    def edge_map_total_and_injective(self) -> bool:
        if set(self.edge_map) != set(self.pattern.edges):
            return False
        images = list(self.edge_map.values())
        return len(set(images)) == len(images)

    def edge_map_into_host(self) -> bool:
        return all(image in self.host.edges for image in self.edge_map.values())

    def edges_touch_branch_sets(self) -> bool:
        for pattern_edge, host_edge in self.edge_map.items():
            endpoints = tuple(pattern_edge)
            if len(endpoints) != 2:
                return False
            u, v = endpoints
            if not (host_edge & self.minor_map.branch_set(u)):
                return False
            if not (host_edge & self.minor_map.branch_set(v)):
                return False
        return True

    def incident_edges_linked(self) -> bool:
        """Condition 3: for incident pattern edges, a connecting path inside
        the shared branch set avoiding all other marked edges."""
        marked = self.marked_edges()
        pattern_edges = sorted(self.pattern.edges, key=lambda e: sorted(map(repr, e)))
        for i, e1 in enumerate(pattern_edges):
            for e2 in pattern_edges[i + 1:]:
                shared = e1 & e2
                if not shared:
                    continue
                (v,) = tuple(shared) if len(shared) == 1 else (next(iter(shared)),)
                if not self._path_between_marked(
                    self.edge_map[e1], self.edge_map[e2], self.minor_map.branch_set(v), marked
                ):
                    return False
        return True

    def _path_between_marked(
        self,
        start_edge: frozenset,
        end_edge: frozenset,
        allowed_vertices: frozenset,
        marked: frozenset,
    ) -> bool:
        """Is there a path (in ``H``) from ``start_edge`` to ``end_edge`` that
        uses only vertices of ``allowed_vertices`` and no marked edge other
        than the endpoints themselves?"""
        if start_edge & end_edge & allowed_vertices:
            return True
        usable_edges = [
            e for e in self.host.edges if e not in marked or e in (start_edge, end_edge)
        ]
        # BFS over edges; two edges are adjacent if they share an allowed vertex.
        frontier = [start_edge]
        seen = {start_edge}
        while frontier:
            current = frontier.pop(0)
            for other in usable_edges:
                if other in seen:
                    continue
                if current & other & allowed_vertices:
                    if other == end_edge:
                        return True
                    seen.add(other)
                    frontier.append(other)
        return False

    def is_valid(self) -> bool:
        return (
            self.minor_map.is_valid()
            and self.edge_map_total_and_injective()
            and self.edge_map_into_host()
            and self.edges_touch_branch_sets()
            and self.incident_edges_linked()
        )

    def __repr__(self) -> str:
        return (
            f"ExpressiveMinorMap(pattern_edges={len(self.edge_map)}, "
            f"valid={self.is_valid()})"
        )


def expressive_from_minor_on_graph(minor_map: MinorMap) -> ExpressiveMinorMap | None:
    """For a 2-uniform host, every minor map extends to an expressive one.

    Each pattern edge ``{u, v}`` is mapped to *some* host edge joining the two
    branch sets; the connecting-path condition is then satisfiable because the
    host edges are single primal edges.  Returns ``None`` if the host is not
    2-uniform or some pattern edge has no witnessing host edge.
    """
    host = minor_map.host
    if host.rank() > 2:
        return None
    edge_map: dict[frozenset, frozenset] = {}
    used: set = set()
    for pattern_edge in sorted(minor_map.pattern.edges, key=lambda e: sorted(map(repr, e))):
        u, v = tuple(pattern_edge)
        witnesses = [
            e
            for e in host.edges
            if e & minor_map.branch_set(u) and e & minor_map.branch_set(v) and e not in used
        ]
        if not witnesses:
            return None
        choice = sorted(witnesses, key=lambda e: sorted(map(repr, e)))[0]
        edge_map[pattern_edge] = choice
        used.add(choice)
    candidate = ExpressiveMinorMap(minor_map, edge_map)
    return candidate if candidate.is_valid() else None
