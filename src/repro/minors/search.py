"""Exact minor-containment search for small graphs.

Deciding whether a fixed graph ``G`` is a minor of ``F`` is NP-complete when
``G`` is part of the input (which is exactly the situation in Theorem 3.5's
reduction), so this module provides an exponential but carefully pruned
backtracking search that assigns a connected *branch set* of host vertices to
every pattern vertex.  It is intended for the small instances exercised in
tests and benches; the grid-specific helpers in
:mod:`repro.minors.grid_minor` use structure-aware preprocessing to stay fast
on the larger planted instances.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.hypergraphs.hypergraph import Hypergraph
from repro.minors.minor_map import MinorMap

Vertex = Hashable


class MinorSearchBudgetExceeded(RuntimeError):
    """Raised when the minor search exceeds its node budget."""


def _adjacency(host: Hypergraph) -> dict:
    return {v: host.neighbours(v) for v in host.vertices}


def _connected_subsets(
    adjacency: dict, seed: Vertex, allowed: frozenset, max_size: int
):
    """Yield connected subsets of ``allowed`` containing ``seed`` whose
    minimum element (by repr) is ``seed``, up to ``max_size`` vertices.

    Requiring the seed to be the minimum avoids yielding the same subset from
    several seeds.
    """
    seed_key = repr(seed)

    def grow(current: frozenset, frontier: frozenset):
        yield current
        if len(current) >= max_size:
            return
        candidates = sorted(
            (v for v in frontier if repr(v) > seed_key and v not in current),
            key=repr,
        )
        for index, vertex in enumerate(candidates):
            new_frontier = (frontier | adjacency[vertex]) & allowed
            # Exclude earlier candidates to avoid duplicates.
            blocked = frozenset(candidates[:index])
            yield from grow(current | {vertex}, new_frontier - blocked)

    initial_frontier = adjacency[seed] & allowed
    yield from grow(frozenset({seed}), initial_frontier)


def find_minor_map(
    pattern: Hypergraph,
    host: Hypergraph,
    max_branch_size: int | None = None,
    max_nodes: int = 500_000,
) -> MinorMap | None:
    """A valid minor map of ``pattern`` into ``host``, or ``None``.

    ``pattern`` must be a graph (2-uniform).  ``max_branch_size`` caps the
    size of individual branch sets (default: the slack
    ``|V(host)| - |V(pattern)| + 1``); ``max_nodes`` caps the number of
    explored partial assignments and raises
    :class:`MinorSearchBudgetExceeded` when exhausted.
    """
    if not pattern.is_graph():
        raise ValueError("the pattern of a minor map must be a graph")
    if pattern.num_vertices == 0:
        return MinorMap(pattern, host, {})
    if pattern.num_vertices > host.num_vertices or pattern.num_edges > host.num_edges:
        return None
    if max_branch_size is None:
        max_branch_size = max(1, host.num_vertices - pattern.num_vertices + 1)

    adjacency = _adjacency(host)
    pattern_order = _search_order(pattern)
    pattern_neighbours = {v: pattern.neighbours(v) for v in pattern.vertices}
    expanded = 0

    def host_edge_between(first: frozenset, second: frozenset) -> bool:
        for v in first:
            if adjacency[v] & second:
                return True
        return False

    def backtrack(index: int, assignment: dict, used: frozenset):
        nonlocal expanded
        if index == len(pattern_order):
            candidate = MinorMap(pattern, host, assignment)
            return candidate if candidate.is_valid() else None
        expanded += 1
        if expanded > max_nodes:
            raise MinorSearchBudgetExceeded(
                f"minor search exceeded {max_nodes} partial assignments"
            )
        vertex = pattern_order[index]
        mapped_neighbours = [
            assignment[u] for u in pattern_neighbours[vertex] if u in assignment
        ]
        allowed = frozenset(host.vertices) - used
        seeds = sorted(allowed, key=repr)
        for seed in seeds:
            for branch in _connected_subsets(adjacency, seed, allowed, max_branch_size):
                if any(not host_edge_between(branch, other) for other in mapped_neighbours):
                    continue
                assignment[vertex] = branch
                result = backtrack(index + 1, assignment, used | branch)
                if result is not None:
                    return result
                del assignment[vertex]
        return None

    return backtrack(0, {}, frozenset())


def has_minor(
    pattern: Hypergraph,
    host: Hypergraph,
    max_branch_size: int | None = None,
    max_nodes: int = 500_000,
) -> bool:
    """True if ``pattern`` is a minor of ``host`` (within the search budget)."""
    return find_minor_map(pattern, host, max_branch_size, max_nodes) is not None


def _search_order(pattern: Hypergraph) -> list:
    """Pattern vertices in a connectivity-friendly order: BFS from a highest
    degree vertex, so each new vertex usually has mapped neighbours that
    constrain its branch set."""
    if not pattern.vertices:
        return []
    start = max(pattern.vertices, key=lambda v: (pattern.degree(v), repr(v)))
    order = [start]
    seen = {start}
    frontier = [start]
    while frontier:
        current = frontier.pop(0)
        for neighbour in sorted(pattern.neighbours(current), key=repr):
            if neighbour not in seen:
                seen.add(neighbour)
                order.append(neighbour)
                frontier.append(neighbour)
    for vertex in pattern.vertex_list():
        if vertex not in seen:
            order.append(vertex)
            seen.add(vertex)
    return order
