"""Graph minors: minor maps, minor search, grid minors, expressive minors.

Graph minors enter the paper through the dual: for a degree-2 hypergraph
``H``, a grid minor of ``H^d`` pulls back to a jigsaw dilution of ``H``
(Lemma 4.4).  This subpackage provides validated minor maps, an exact
backtracking minor-containment test for small instances, grid-minor search
helpers for the structured instances used in the benches, and the *expressive*
minors of Appendix D that drive the bounded-degree generalisation.
"""

from repro.minors.minor_map import MinorMap
from repro.minors.search import find_minor_map, has_minor
from repro.minors.grid_minor import find_grid_minor, largest_grid_minor_dimension
from repro.minors.expressive import ExpressiveMinorMap

__all__ = [
    "MinorMap",
    "find_minor_map",
    "has_minor",
    "find_grid_minor",
    "largest_grid_minor_dimension",
    "ExpressiveMinorMap",
]
