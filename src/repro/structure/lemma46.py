"""Constructive Lemma 4.6: ``ghw(H) <= tw(H^d) + 1``.

Given a tree decomposition of the dual ``H^d`` of width ``k``, the proof in
Appendix C builds a GHD of ``H`` of width ``k + 1`` by using every dual bag
``D_u`` (a set of edges of ``H``) simultaneously as the edge cover
``lambda_u`` and, through its union, as the bag ``B_u``.  This module exposes
that construction for an *explicit* dual decomposition — the heuristic
end-to-end version lives in :func:`repro.widths.ghw.ghd_via_dual_treewidth` —
plus a convenience function reporting both sides of the inequality.
"""

from __future__ import annotations

from repro.hypergraphs.duality import dual_hypergraph
from repro.hypergraphs.hypergraph import Hypergraph
from repro.hypergraphs.reduction import reduce_hypergraph
from repro.widths.ghd import GeneralizedHypertreeDecomposition
from repro.widths.tree_decomposition import TreeDecomposition
from repro.widths.treewidth import treewidth


def ghd_from_dual_tree_decomposition(
    hypergraph: Hypergraph, dual_decomposition: TreeDecomposition
) -> GeneralizedHypertreeDecomposition:
    """The Lemma 4.6 construction for an explicit tree decomposition of the
    dual.

    ``dual_decomposition`` must be a tree decomposition of ``H^d``; its bags
    are therefore sets of edges of ``H``.  The resulting GHD of ``H`` has
    width at most ``dual_decomposition.width() + 1``.
    """
    dual = dual_hypergraph(hypergraph)
    if not dual_decomposition.is_valid_for(dual):
        raise ValueError("the supplied decomposition is not valid for the dual hypergraph")
    bags = {}
    covers = {}
    for node, dual_bag in dual_decomposition.bags.items():
        union: set = set()
        for edge in dual_bag:
            union.update(edge)
        bags[node] = frozenset(union)
        covers[node] = frozenset(dual_bag)
    decomposition = TreeDecomposition(bags, [tuple(e) for e in dual_decomposition.tree_edges])
    return GeneralizedHypertreeDecomposition(decomposition, covers)


def lemma46_bound(hypergraph: Hypergraph) -> dict:
    """Evaluate both sides of Lemma 4.6 on a concrete (reduced) hypergraph.

    Returns a dict with the dual treewidth bounds, the width of the
    constructed GHD, whether the GHD validates, and whether the inequality
    ``ghd_width <= tw_upper + 1`` holds (it must, by construction).
    """
    reduced = reduce_hypergraph(hypergraph)
    if not reduced.edges:
        return {
            "dual_tw_lower": 0,
            "dual_tw_upper": 0,
            "ghd_width": 0,
            "ghd_valid": True,
            "inequality_holds": True,
        }
    dual = dual_hypergraph(reduced)
    dual_tw = treewidth(dual)
    ghd = ghd_from_dual_tree_decomposition(reduced, dual_tw.decomposition)
    return {
        "dual_tw_lower": dual_tw.lower,
        "dual_tw_upper": dual_tw.upper,
        "ghd_width": ghd.width(),
        "ghd_valid": ghd.is_valid_for(reduced),
        "inequality_holds": ghd.width() <= dual_tw.upper + 1,
    }
