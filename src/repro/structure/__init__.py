"""Constructive versions of the paper's structural lemmas.

* :mod:`repro.structure.lemma44` — from a grid (or any connected graph) minor
  of the dual of a degree-2 hypergraph to a dilution onto the graph's dual.
* :mod:`repro.structure.lemma46` — from a tree decomposition of the dual to a
  GHD of the hypergraph of width at most ``tw + 1``.
"""

from repro.structure.lemma44 import Lemma44Result, dilution_from_dual_minor
from repro.structure.lemma46 import ghd_from_dual_tree_decomposition, lemma46_bound

__all__ = [
    "Lemma44Result",
    "dilution_from_dual_minor",
    "ghd_from_dual_tree_decomposition",
    "lemma46_bound",
]
