"""Constructive Lemma 4.4.

Lemma 4.4: let ``G`` be a connected graph and ``H`` a degree-2 hypergraph; if
``G`` is a minor of ``H^d`` then ``G^d`` is a hypergraph dilution of ``H``.

The proof is constructive and this module follows it step by step:

1. interpret the branch sets of the minor map as sets ``delta(v)`` of edges of
   ``H`` (vertices of the dual *are* edges of ``H``);
2. for every pattern edge ``{u, v}`` fix a connector vertex ``c_{u,v}`` of
   ``H`` lying in an edge of ``delta(u)`` and an edge of ``delta(v)``;
3. let ``tau_u`` be the vertices incident only to edges of ``delta(u)`` and
   *merge* on every vertex of ``tau_u`` — this collapses each branch into a
   single hyperedge ``e_u``;
4. delete every vertex outside ``C = {c_{u,v}}`` — the result is isomorphic to
   ``G^d`` (plus possibly an empty leftover edge when the minor map is not
   onto, removed by a final subedge deletion).

The function returns the dilution sequence together with the resulting
hypergraph and the edge correspondence ``u -> e_u ∩ C``, so callers (the
Theorem 4.7 pipeline, the tests) can verify the construction independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dilutions.operations import DeleteSubedge, DeleteVertex, MergeOnVertex
from repro.dilutions.sequence import DilutionSequence
from repro.hypergraphs.duality import dual_hypergraph
from repro.hypergraphs.hypergraph import Hypergraph
from repro.minors.minor_map import MinorMap


@dataclass
class Lemma44Result:
    """Outcome of the Lemma 4.4 construction."""

    sequence: DilutionSequence
    result: Hypergraph
    edge_of_pattern_vertex: dict = field(default_factory=dict)
    connector_of_pattern_edge: dict = field(default_factory=dict)


def dilution_from_dual_minor(
    hypergraph: Hypergraph, pattern: Hypergraph, minor_map: MinorMap
) -> Lemma44Result:
    """Build the dilution sequence of Lemma 4.4.

    Parameters
    ----------
    hypergraph:
        The degree-2 hypergraph ``H``; it should be reduced (no isolated
        vertices, no empty edges, no duplicate vertex types) — reduce first
        with :func:`repro.hypergraphs.reduction.reduce_hypergraph`.
    pattern:
        The connected graph ``G`` (2-uniform hypergraph).
    minor_map:
        A minor map of ``G`` into ``H^d``: branch sets are sets of vertices of
        the dual, i.e. sets of edges of ``H``.
    """
    if hypergraph.degree() > 2:
        raise ValueError("Lemma 4.4 requires a hypergraph of degree at most 2")
    if not pattern.is_graph():
        raise ValueError("the pattern must be a graph")

    delta: dict = {
        v: frozenset(frozenset(edge) for edge in minor_map.branch_set(v))
        for v in pattern.vertices
    }
    for v, branch in delta.items():
        unknown = branch - hypergraph.edges
        if unknown:
            raise ValueError(
                f"branch set of {v!r} contains non-edges of H: {sorted(map(sorted, unknown))}"
            )

    # Step 2: connector vertices c_{u, v}.
    connectors: dict[frozenset, object] = {}
    connector_sets: dict = {v: set() for v in pattern.vertices}
    for pattern_edge in sorted(pattern.edges, key=lambda e: sorted(map(repr, e))):
        u, v = tuple(sorted(pattern_edge, key=repr))
        candidates = sorted(
            (
                w
                for w in hypergraph.vertices
                if any(w in e for e in delta[u]) and any(w in e for e in delta[v])
            ),
            key=repr,
        )
        if not candidates:
            raise ValueError(
                f"no connector vertex between branch sets of {u!r} and {v!r}: "
                "the supplied map is not a valid minor map into the dual"
            )
        connector = candidates[0]
        connectors[pattern_edge] = connector
        connector_sets[u].add(connector)
        connector_sets[v].add(connector)

    all_connectors = frozenset(connectors.values())

    # Step 3: tau_u = vertices incident only to edges in delta(u); merge them.
    operations = []
    current = hypergraph
    for v in sorted(pattern.vertices, key=repr):
        tau = sorted(
            (
                w
                for w in hypergraph.vertices
                if hypergraph.incident_edges(w)
                and hypergraph.incident_edges(w) <= delta[v]
                and w not in all_connectors
            ),
            key=repr,
        )
        for w in tau:
            if w not in current.vertices:
                continue
            operation = MergeOnVertex(w)
            operations.append(operation)
            current = operation.apply(current)

    # Step 4: delete all vertices outside C.
    for w in sorted(current.vertices, key=repr):
        if w in all_connectors:
            continue
        operation = DeleteVertex(w)
        operations.append(operation)
        current = operation.apply(current)

    # The minor map need not be onto: edges outside every branch set have by
    # now lost all their vertices and survive (at most) as a single empty
    # edge, which is a proper subedge of any other edge and can be deleted.
    if current.has_empty_edge() and current.num_edges > 1:
        operation = DeleteSubedge(frozenset())
        operations.append(operation)
        current = operation.apply(current)

    # Record which resulting edge corresponds to which pattern vertex.
    edge_of_pattern_vertex = {}
    for v in pattern.vertices:
        expected = frozenset(
            connectors[e] for e in pattern.edges if v in e
        )
        edge_of_pattern_vertex[v] = expected

    return Lemma44Result(
        sequence=DilutionSequence(operations),
        result=current,
        edge_of_pattern_vertex=edge_of_pattern_vertex,
        connector_of_pattern_edge=dict(connectors),
    )


def pattern_dual(pattern: Hypergraph) -> Hypergraph:
    """``G^d`` for a graph ``G`` — the jigsaw when ``G`` is a grid."""
    return dual_hypergraph(pattern)
