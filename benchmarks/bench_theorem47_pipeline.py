"""E5 — the Theorem 4.7 pipeline (Excluded-Grid analogue for degree 2).

For degree-2 hypergraphs with planted grid structure the pipeline
(reduce -> dual -> grid minor -> Lemma 4.4) must return a verified jigsaw
dilution whose dimension tracks the planted one; the benchmark reports the
dimension found and the certified ghw bounds on both ends.
"""

from repro.hypergraphs import generators
from repro.jigsaws import dilute_to_jigsaw, planted_thickened_jigsaw_minor
from repro.widths.ghw import ghw_upper_bound

AUTOMATIC_DIMENSIONS = [(2, 2), (3, 2)]
PLANTED_DIMENSIONS = [(3, 3), (4, 4)]


def run_pipeline_suite():
    results = []
    for rows, cols in AUTOMATIC_DIMENSIONS:
        source = generators.thickened_jigsaw(rows, cols)
        certificate = dilute_to_jigsaw(source, rows, cols)
        results.append(("search", rows, cols, certificate))
    for rows, cols in PLANTED_DIMENSIONS:
        source, minor = planted_thickened_jigsaw_minor(rows, cols)
        certificate = dilute_to_jigsaw(source, rows, cols, minor=minor)
        results.append(("planted", rows, cols, certificate))
    return results


def test_theorem47_pipeline(benchmark, record_result):
    results = benchmark.pedantic(run_pipeline_suite, rounds=1, iterations=1)
    lines = [
        "Theorem 4.7 pipeline: jigsaw dilutions found in degree-2 hypergraphs",
        "  mode     n  m  source_ghw_upper  jigsaw_ok  sequence_ok  sequence_length",
    ]
    for mode, rows, cols, certificate in results:
        assert certificate is not None
        source_upper = ghw_upper_bound(certificate.source).upper
        lines.append(
            f"  {mode:<8} {rows}  {cols}  {source_upper:<17} "
            f"{certificate.result_is_jigsaw()!s:<10} {certificate.sequence_replays()!s:<12} "
            f"{len(certificate.sequence)}"
        )
    record_result("E5_theorem47", "\n".join(lines))

    for _, rows, cols, certificate in results:
        assert certificate.result_is_jigsaw()
        assert certificate.sequence_replays()
        assert certificate.grid_minor.is_valid()
