"""E2 — Figure 1: contraction vs merging.

The figure illustrates that the hypergraph-minor contraction and the dilution
merging are genuinely different operations: on the example hypergraph the
contraction raises the degree (so its result cannot be a dilution), while the
merging creates a rank-4 edge whose vertex set is not a clique in the primal
graph (so its result cannot be reached by hypergraph-minor operations).
"""

from repro.dilutions import MergeOnVertex
from repro.hypergraphs import generators, primal_graph


def contraction_vs_merging():
    h = generators.figure1_hypergraph()
    # Hypergraph-minor contraction of the primal edge {x, y}: replace x and y
    # by a single vertex in every edge.
    contracted_edges = [
        frozenset("xy" if v in ("x", "y") else v for v in edge) for edge in h.edges
    ]
    from repro.hypergraphs import Hypergraph

    contracted = Hypergraph(edges=[e for e in contracted_edges if len(e) > 1])
    merged = MergeOnVertex("y").apply(h)
    return h, contracted, merged


def test_figure1_claims(benchmark, record_result):
    h, contracted, merged = benchmark(contraction_vs_merging)
    merged_edge = frozenset({"x", "c", "d", "e"})
    primal = primal_graph(h)
    clique = all(
        primal.has_edge(u, v)
        for u in merged_edge
        for v in merged_edge
        if repr(u) < repr(v)
    )
    lines = [
        "Figure 1 (contraction vs merging) on the example hypergraph:",
        f"  degree(H) = {h.degree()}, rank(H) = {h.rank()}",
        f"  after contraction of {{x, y}}: degree = {contracted.degree()}  (increases -> not a dilution)",
        f"  after merging on y: rank = {merged.rank()}, new edge = {sorted(merged_edge)}",
        f"  merged edge forms a clique in the primal graph of H: {clique}  (so not reachable by minors)",
        f"  merging kept the degree at {merged.degree()}",
    ]
    record_result("E2_figure1", "\n".join(lines))

    assert contracted.degree() > h.degree()
    assert merged.rank() == 4 > h.rank()
    assert merged.degree() <= h.degree()
    assert not clique
