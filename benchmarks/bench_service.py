"""Query-service load benchmark: latency percentiles under concurrent load.

Starts the HTTP service in-process (:func:`repro.service.serve_in_thread`),
registers one :func:`repro.cq.workloads.mixed_batch` database, then replays
the batch's queries from ``CLIENTS`` concurrent keep-alive clients — every
client thread owns one connection and loops over its share of the request
mix (answer / count / is_satisfiable / sharded count).  Per-request wall
latency lands in ``benchmarks/BENCH_service.json``:

* ``p50_seconds`` / ``p99_seconds`` / ``mean_seconds`` / ``max_seconds``
  (``p99_seconds`` is the gated number — the latency family of
  ``check_regression.compare_to_baseline``);
* ``throughput_rps`` — completed requests per wall second across all
  clients;
* the error count (must be 0 — a shed or 5xx under this configuration is a
  bug, the admission queue is sized for the client count).

Run it with::

    python benchmarks/bench_service.py              # refresh the baseline
    python benchmarks/bench_service.py --quick      # smoke scale, no write
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys
import threading
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.cq import workloads  # noqa: E402
from repro.service import (  # noqa: E402
    QueryService,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    serve_in_thread,
)
from repro.service.metrics import percentile  # noqa: E402

BASELINE_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_service.json"

#: (scale label, concurrent clients, requests per client).
SCALES = [("c2", 2, 40), ("c8", 8, 40)]
QUICK_SCALES = [("c8", 8, 10)]
WORKLOAD_SEED = 11
#: Request mix, cycled per request index: (endpoint, extra options).
MIX = [
    ("count", {}),
    ("answer", {}),
    ("count", {"shards": 2}),
    ("is_satisfiable", {}),
]


def _replay(client: ServiceClient, queries, start_at: int, requests: int):
    """One client's loop: ``requests`` calls, cycling queries and the mix.
    Returns (latencies, errors)."""
    latencies, errors = [], 0
    for i in range(requests):
        query = queries[(start_at + i) % len(queries)]
        endpoint, options = MIX[(start_at + i) % len(MIX)]
        call = getattr(client, endpoint)
        begin = time.perf_counter()
        try:
            call(query, dataset="bench", **options)
        except ServiceError:
            errors += 1
        latencies.append(time.perf_counter() - begin)
    return latencies, errors


def run_benchmarks(quick: bool = False) -> dict:
    queries, database = workloads.mixed_batch(
        seed=WORKLOAD_SEED, copies=2, size="small", distinct=12
    )
    results = []
    for label, clients, requests in (QUICK_SCALES if quick else SCALES):
        service = QueryService(
            ServiceConfig(max_concurrent=clients, max_queue=4 * clients)
        )
        service.register_dataset("bench", database)
        with serve_in_thread(service) as handle:
            # Warm the public tenant's plan cache so the recorded numbers
            # are the steady-state serving latency, not cold planning.
            with ServiceClient(handle.host, handle.port) as warm:
                for query in queries[: len(set(MIX[i][0] for i in range(4)))]:
                    warm.count(query, dataset="bench")
            all_latencies: list = []
            total_errors = 0
            lock = threading.Lock()

            def worker(index: int) -> None:
                nonlocal total_errors
                with ServiceClient(handle.host, handle.port) as client:
                    latencies, errors = _replay(
                        client, queries, index * requests, requests
                    )
                with lock:
                    all_latencies.extend(latencies)
                    total_errors += errors

            began = time.perf_counter()
            threads = [
                threading.Thread(target=worker, args=(w,))
                for w in range(clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            wall = time.perf_counter() - began
        results.append(
            {
                "scale": label,
                "clients": clients,
                "requests": clients * requests,
                "errors": total_errors,
                "wall_seconds": round(wall, 6),
                "throughput_rps": round(clients * requests / wall, 2),
                "mean_seconds": round(
                    sum(all_latencies) / len(all_latencies), 6
                ),
                "p50_seconds": round(percentile(all_latencies, 0.50), 6),
                "p99_seconds": round(percentile(all_latencies, 0.99), 6),
                "max_seconds": round(max(all_latencies), 6),
            }
        )
        print(
            f"  {label}: {clients} clients x {requests} reqs -> "
            f"p50 {results[-1]['p50_seconds'] * 1000:.1f}ms  "
            f"p99 {results[-1]['p99_seconds'] * 1000:.1f}ms  "
            f"{results[-1]['throughput_rps']:.0f} req/s  "
            f"errors={total_errors}"
        )
    return {
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "workload": (
                f"mixed_batch(seed={WORKLOAD_SEED}, copies=2, size=small, "
                "distinct=12)"
            ),
        },
        "benchmarks": {"service_latency": results},
    }


def main() -> int:
    quick = "--quick" in sys.argv
    print("service load benchmark" + (" (quick)" if quick else ""))
    payload = run_benchmarks(quick=quick)
    failures = [
        point for point in payload["benchmarks"]["service_latency"]
        if point["errors"]
    ]
    if failures:
        print(f"FAILED: {len(failures)} scale point(s) saw request errors")
        return 1
    if quick:
        print("quick run: baseline not rewritten")
        return 0
    BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"baseline written to {BASELINE_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
