"""E3 — Figure 2: an example dilution from a degree-2 hypergraph to the
3x2 jigsaw.

Figure 2 shows a degree-2 hypergraph diluting to the 3x2 jigsaw by first
merging on the connector vertices (dashed in the figure) and then deleting the
superfluous vertices.  The thickened 3x2 jigsaw realises exactly that shape;
the benchmark runs the full Theorem 4.7 pipeline on it and reports the phases
of the discovered dilution sequence.
"""

from repro.dilutions.operations import DeleteSubedge, DeleteVertex, MergeOnVertex
from repro.hypergraphs import generators
from repro.jigsaws import dilute_to_jigsaw


def run_pipeline():
    source = generators.figure2_hypergraph()
    certificate = dilute_to_jigsaw(source, 3, 2)
    return source, certificate


def test_figure2_dilution(benchmark, record_result):
    source, certificate = benchmark.pedantic(run_pipeline, rounds=1, iterations=1)
    assert certificate is not None
    operations = list(certificate.sequence)
    merges = sum(1 for op in operations if isinstance(op, MergeOnVertex))
    deletions = sum(1 for op in operations if isinstance(op, DeleteVertex))
    subedges = sum(1 for op in operations if isinstance(op, DeleteSubedge))
    lines = [
        "Figure 2 (example dilution to the 3x2 jigsaw):",
        f"  source: degree-2 hypergraph with |V| = {source.num_vertices}, |E| = {source.num_edges}",
        f"  dilution sequence: {merges} mergings, {deletions} vertex deletions, {subedges} subedge deletions",
        f"  result is the 3x2 jigsaw: {certificate.result_is_jigsaw()}",
        f"  sequence replays deterministically: {certificate.sequence_replays()}",
        "  (the thickened realisation needs no vertex deletions: every superfluous",
        "   port vertex is consumed by a merging, matching the figure's first phase)",
    ]
    record_result("E3_figure2", "\n".join(lines))

    assert certificate.result_is_jigsaw()
    assert certificate.sequence_replays()
    assert merges > 0
    assert deletions + subedges >= 0
