"""Perf regression gate: compare a fresh engine-benchmark run to the baseline.

Re-runs the workloads of :mod:`bench_engine_scaling` (indexed engine only —
the naive solver's numbers are historical context, not a gate) and compares
every timing against ``benchmarks/BENCH_engine.json``.  A benchmark point
fails when it is more than ``THRESHOLD``x slower than the recorded baseline;
points faster than the baseline always pass (refresh the baseline with
``python benchmarks/bench_engine_scaling.py`` after a genuine speedup so the
gate keeps tracking the best known numbers).

Timings below ``MIN_SECONDS`` are ignored for gating: at sub-10ms scale the
noise floor of a shared machine would dominate the signal.  Families that
record an acceptance ratio instead of (or next to) a timing — the wire-byte
sizes, the incremental-refresh speedups, and the skew-ordering
cost-vs-static speedups — gate on the ratio, which stays meaningful below
the noise floor.

Run it as a script (``make bench``) or through pytest::

    python benchmarks/check_regression.py
    python -m pytest -m bench benchmarks/check_regression.py
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import pytest

from bench_engine_scaling import BASELINE_PATH, run_benchmarks

THRESHOLD = 2.0
MIN_SECONDS = 0.01


def compare_to_baseline(current: dict, baseline: dict) -> list[str]:
    """Human-readable failure messages for every gated regression."""
    failures = []
    for name, baseline_points in baseline.get("benchmarks", {}).items():
        current_points = {
            p["scale"]: p for p in current["benchmarks"].get(name, [])
        }
        for point in baseline_points:
            scale = point["scale"]
            if scale not in current_points:
                failures.append(f"{name}/{scale}: missing from current run")
                continue
            if "p99_seconds" in point:
                # Latency family (service benchmarks): gate the tail, not
                # the mean — p99 is what an overload or a lost cancellation
                # moves first.  Same 2x threshold, same noise floor.
                now = current_points[scale]
                if now.get("errors"):
                    failures.append(
                        f"{name}/{scale}: {now['errors']} request error(s) "
                        "under benchmark load"
                    )
                base_p99 = point["p99_seconds"]
                now_p99 = now["p99_seconds"]
                if max(base_p99, now_p99) < MIN_SECONDS:
                    continue
                if now_p99 > base_p99 * THRESHOLD:
                    failures.append(
                        f"{name}/{scale}: p99 {now_p99:.4f}s vs baseline "
                        f"{base_p99:.4f}s ({now_p99 / base_p99:.1f}x > "
                        f"{THRESHOLD}x threshold)"
                    )
                continue
            if "indexed_seconds" not in point:
                # Byte-size family (shipping_bytes): deterministic, so the
                # gate holds the acceptance inequality (wire < pickled) and
                # the recorded size directly instead of a timing.
                now = current_points[scale]
                if now["wire_bytes"] >= now["pickled_bytes"]:
                    failures.append(
                        f"{name}/{scale}: wire payload {now['wire_bytes']}B "
                        f"not smaller than pickled database "
                        f"{now['pickled_bytes']}B"
                    )
                if now["wire_bytes"] > point["wire_bytes"] * THRESHOLD:
                    failures.append(
                        f"{name}/{scale}: wire payload {now['wire_bytes']}B "
                        f"vs baseline {point['wire_bytes']}B "
                        f"(> {THRESHOLD}x threshold)"
                    )
                continue
            if "static_seconds" in point:
                # Skew-ordering family: the acceptance number is the ratio
                # between the forced static-greedy order and the cost-based
                # default on the same hot-pair workload — the statistics
                # must keep routing around the quadratic A⋈B blow-up by at
                # least the recorded ``min_speedup`` (2x; in practice the
                # measured gap is two orders of magnitude).
                now = current_points[scale]
                minimum = point.get("min_speedup")
                if minimum is not None and now["speedup"] < minimum:
                    failures.append(
                        f"{name}/{scale}: cost-based ordering only "
                        f"{now['speedup']:.1f}x faster than forced static "
                        f"(acceptance bar {minimum:.0f}x; cost "
                        f"{now['indexed_seconds']:.4f}s vs static "
                        f"{now['static_seconds']:.4f}s)"
                    )
            if "from_scratch_seconds" in point:
                # Incremental-refresh family: the refresh time itself is
                # usually below the noise floor, so the gate holds the
                # acceptance ratio instead — a small-delta refresh must
                # keep beating the from-scratch evaluation by the recorded
                # ``min_speedup`` (5x on the one-tuple and 1% points).
                now = current_points[scale]
                minimum = point.get("min_speedup")
                if minimum is not None and now["speedup"] < minimum:
                    failures.append(
                        f"{name}/{scale}: incremental refresh only "
                        f"{now['speedup']:.1f}x faster than from-scratch "
                        f"answer() (acceptance bar {minimum:.0f}x; refresh "
                        f"{now['indexed_seconds']:.4f}s vs "
                        f"{now['from_scratch_seconds']:.4f}s)"
                    )
            base_seconds = point["indexed_seconds"]
            now_seconds = current_points[scale]["indexed_seconds"]
            if max(base_seconds, now_seconds) < MIN_SECONDS:
                continue
            if now_seconds > base_seconds * THRESHOLD:
                failures.append(
                    f"{name}/{scale}: {now_seconds:.4f}s vs baseline "
                    f"{base_seconds:.4f}s ({now_seconds / base_seconds:.1f}x > "
                    f"{THRESHOLD}x threshold)"
                )
    return failures


def run_gate() -> list[str]:
    if not BASELINE_PATH.exists():
        raise FileNotFoundError(
            f"{BASELINE_PATH} not found; create it with "
            "`python benchmarks/bench_engine_scaling.py`"
        )
    baseline = json.loads(BASELINE_PATH.read_text())
    current = run_benchmarks(include_naive=False)
    return compare_to_baseline(current, baseline)


def run_service_gate() -> list[str]:
    """Compare a fresh service load-benchmark run to ``BENCH_service.json``
    (the latency family: p99 gated at the same 2x threshold)."""
    from bench_service import BASELINE_PATH as SERVICE_BASELINE
    from bench_service import run_benchmarks as run_service_benchmarks

    if not SERVICE_BASELINE.exists():
        raise FileNotFoundError(
            f"{SERVICE_BASELINE} not found; create it with "
            "`python benchmarks/bench_service.py`"
        )
    baseline = json.loads(SERVICE_BASELINE.read_text())
    current = run_service_benchmarks(quick=False)
    return compare_to_baseline(current, baseline)


@pytest.mark.bench
def test_engine_perf_no_regression():
    failures = run_gate()
    assert not failures, "perf regressions vs BENCH_engine.json:\n" + "\n".join(failures)


def main() -> int:
    if "--service" in sys.argv:
        failures = run_service_gate()
        if failures:
            print("PERF REGRESSION (vs benchmarks/BENCH_service.json):")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print("service latency within 2x of BENCH_service.json baseline")
        return 0
    failures = run_gate()
    if failures:
        print("PERF REGRESSION (vs benchmarks/BENCH_engine.json):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("engine benchmarks within 2x of BENCH_engine.json baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
