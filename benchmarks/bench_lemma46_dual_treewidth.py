"""E9 — Lemma 4.6: ghw(H) <= tw(H^d) + 1 across degree-2 families.

The benchmark evaluates both sides of the inequality on jigsaws, thickened
jigsaws, hyper-cycles, and duals of random graphs, reporting the gap
distribution; the inequality must hold on every instance, with the
constructed GHD validating.
"""

from repro.hypergraphs import generators
from repro.structure import lemma46_bound


def build_instances():
    instances = [
        ("jigsaw-2x2", generators.jigsaw(2, 2)),
        ("jigsaw-3x3", generators.jigsaw(3, 3)),
        ("jigsaw-3x4", generators.jigsaw(3, 4)),
        ("thickened-2x3", generators.thickened_jigsaw(2, 3)),
        ("hypercycle-7", generators.hypercycle(7)),
        ("hyperpath-6", generators.hyperpath(6)),
    ]
    for seed in range(4):
        instances.append(
            (f"csp-dual-{seed}", generators.random_degree2_hypergraph(9, 0.4, seed=seed))
        )
    return [(name, h) for name, h in instances if h.edges]


def run_lemma46():
    rows = []
    for name, hypergraph in build_instances():
        outcome = lemma46_bound(hypergraph)
        rows.append((name, outcome))
    return rows


def test_lemma46_inequality(benchmark, record_result):
    rows = benchmark.pedantic(run_lemma46, rounds=1, iterations=1)
    lines = [
        "Lemma 4.6: ghw(H) <= tw(H^d) + 1",
        "  instance        tw(dual)   ghd_width  valid  inequality",
    ]
    for name, outcome in rows:
        lines.append(
            f"  {name:<15} {outcome['dual_tw_upper']:<10} {outcome['ghd_width']:<10} "
            f"{outcome['ghd_valid']!s:<6} {outcome['inequality_holds']}"
        )
    record_result("E9_lemma46", "\n".join(lines))

    for _, outcome in rows:
        assert outcome["ghd_valid"]
        assert outcome["inequality_holds"]
