"""E6 — the Theorem 3.4 reduction: size bound and answer preservation.

The proof bounds the reduced database by ``||D_p|| = O(degree(H)^l ||D_q||)``
for a dilution sequence of length ``l``.  The benchmark transports instances
of growing database size along a fixed dilution sequence (thickened 2x2
jigsaw -> 2x2 jigsaw) and along longer merge chains, reporting the measured
blow-up against the bound, and re-checks answer preservation and parsimony on
the smaller instances.
"""

from repro.cq import generators as cqgen
from repro.dilutions import DilutionSequence, MergeOnVertex, find_dilution_sequence
from repro.hypergraphs import Hypergraph, generators
from repro.reductions import reduce_along_dilution
from repro.reductions.parsimonious import (
    size_bound_holds,
    verify_answer_preservation,
    verify_parsimony,
)

DATABASE_SIZES = [4, 8, 16, 32]


def chain_with_merges(length: int) -> tuple[Hypergraph, DilutionSequence]:
    """A path-shaped source where ``length`` vertices get merged away."""
    edges = []
    for i in range(length):
        edges.append({f"x{i}", f"m{i}"})
        edges.append({f"m{i}", f"x{i+1}"})
    source = Hypergraph(edges=edges)
    sequence = DilutionSequence([MergeOnVertex(f"m{i}") for i in range(length)])
    return source, sequence


def run_reduction_sweep():
    rows = []
    # Fixed structural reduction, growing databases.
    source = generators.thickened_jigsaw(2, 2)
    target = generators.jigsaw(2, 2)
    sequence = find_dilution_sequence(source, target, max_nodes=100_000)
    diluted = sequence.apply(source)
    for tuples in DATABASE_SIZES:
        query = cqgen.query_from_hypergraph(diluted)
        database = cqgen.planted_database(query, 4, tuples, seed=tuples)
        result = reduce_along_dilution(query, database, source, sequence)
        rows.append(
            (
                "thickened-2x2",
                len(sequence),
                database.size(),
                result.database.size(),
                result.blow_up,
                size_bound_holds(result, source.degree()),
            )
        )
    # Growing sequence length, fixed database size.
    verification = []
    for length in (1, 2, 3, 4):
        source, sequence = chain_with_merges(length)
        diluted = sequence.apply(source)
        query = cqgen.query_from_hypergraph(diluted)
        database = cqgen.planted_database(query, 3, 6, seed=length)
        result = reduce_along_dilution(query, database, source, sequence)
        rows.append(
            (
                f"merge-chain-l{length}",
                length,
                database.size(),
                result.database.size(),
                result.blow_up,
                size_bound_holds(result, source.degree()),
            )
        )
        if length <= 2:
            verification.append(
                (verify_answer_preservation(result), verify_parsimony(result))
            )
    return rows, verification


def test_theorem34_reduction(benchmark, record_result):
    rows, verification = benchmark.pedantic(run_reduction_sweep, rounds=1, iterations=1)
    lines = [
        "Theorem 3.4 reduction: database blow-up vs the O(degree^l) bound",
        "  instance          l   ||D_q||  ||D_p||  blow-up  within-bound",
    ]
    for name, length, before, after, blow_up, ok in rows:
        lines.append(
            f"  {name:<17} {length:<3} {before:<8} {after:<8} {blow_up:<8.2f} {ok}"
        )
    lines.append("")
    lines.append(f"answer preservation / parsimony on verified instances: {verification}")
    record_result("E6_theorem34", "\n".join(lines))

    assert all(ok for *_, ok in rows)
    assert all(preserved and parsimonious for preserved, parsimonious in verification)
    # Blow-up grows with the sequence length but stays within the fpt bound.
    chain_rows = [r for r in rows if r[0].startswith("merge-chain")]
    assert chain_rows[-1][3] >= chain_rows[0][3]
