"""E1 — Table 1: degree-2 hypergraphs with ghw > k in the corpus.

Paper: of 3649 HyperBench hypergraphs, 932 have degree 2; of these 649 have
ghw > 1, 575 > 2, 506 > 3, 452 > 4 and 389 > 5.  We regenerate the table over
the synthetic HyperBench-substitute corpus (DESIGN.md, substitution 1): the
absolute counts differ, the shape — most degree-2 hypergraphs non-acyclic and
a large fraction above ghw 5 — is what is being reproduced.

The second benchmark drives the unified engine over the corpus the way a
HyperBench-style system would: canonical queries for a stratified sample of
hypergraphs, answered through ``repro.engine``, checking that the planner's
dispatch agrees with each entry's certified width band.
"""

from repro.benchdata import degree2_ghw_table, generate_corpus, render_table1
from repro.cq import generators as cq_generators
from repro.engine import (
    Engine,
    STRATEGY_BACKTRACKING,
    STRATEGY_GHD,
    STRATEGY_YANNAKAKIS,
)

PAPER_TABLE1 = {1: 649, 2: 575, 3: 506, 4: 452, 5: 389}
CORPUS_SCALE = 0.35  # keeps the benchmark run under a minute


def build_and_tabulate(scale: float):
    corpus = generate_corpus(seed=2022, scale=scale)
    return corpus, degree2_ghw_table(corpus)


def test_table1_regeneration(benchmark, record_result):
    corpus, table = benchmark.pedantic(
        lambda: build_and_tabulate(CORPUS_SCALE), rounds=1, iterations=1
    )
    lines = [render_table1(corpus), "", "paper reference (HyperBench):"]
    for k, amount in PAPER_TABLE1.items():
        lines.append(f"  {k:<4} {amount}")
    record_result("E1_table1", "\n".join(lines))

    amounts = dict(table)
    degree2_total = sum(1 for entry in corpus if entry.is_degree_two)
    # Shape checks mirroring the paper's reading of the table.
    assert degree2_total > 0
    assert amounts[1] > 0.5 * degree2_total          # most degree-2 entries are non-acyclic
    assert all(amounts[k] >= amounts[k + 1] for k in range(1, 5))
    assert amounts[5] > 0.1 * degree2_total          # a substantial high-ghw tail


def _engine_sample(corpus, engine):
    """One small entry per certified width band, with the expected strategy."""

    def pick(predicate, size_cap):
        candidates = [
            e for e in corpus
            if predicate(e) and e.hypergraph.size <= size_cap
        ]
        return min(candidates, key=lambda e: e.hypergraph.size) if candidates else None

    bands = [
        ("acyclic", pick(lambda e: e.ghw_upper <= 1, 24), STRATEGY_YANNAKAKIS),
        (
            "bounded",
            pick(lambda e: 2 <= e.ghw_upper <= engine.planner.max_ghd_width, 24),
            STRATEGY_GHD,
        ),
        (
            "high-width",
            pick(lambda e: e.ghw_lower > engine.planner.max_ghd_width, 40),
            STRATEGY_BACKTRACKING,
        ),
    ]
    return [(band, entry, expected) for band, entry, expected in bands if entry is not None]


def test_table1_engine_dispatch(benchmark, record_result):
    """Answer canonical corpus queries through the unified engine; the
    planner must dispatch each width band to its strategy."""
    corpus = generate_corpus(seed=2022, scale=0.1)
    engine = Engine()
    sample = _engine_sample(corpus, engine)
    assert len(sample) == 3, "corpus sample must cover all three width bands"

    def evaluate():
        outcomes = []
        for band, entry, expected in sample:
            query = cq_generators.query_from_hypergraph(entry.hypergraph)
            database = cq_generators.planted_database(
                query, domain_size=3, tuples_per_relation=6, seed=7
            )
            result = engine.is_satisfiable(query, database)
            outcomes.append((band, entry.name, result.strategy, expected, result.value))
        return outcomes

    outcomes = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    lines = ["engine dispatch over the corpus sample:"]
    for band, name, strategy, expected, satisfiable in outcomes:
        lines.append(f"  {band:<11} {name:<24} {strategy:<20} satisfiable={satisfiable}")
        assert strategy == expected, f"{name}: expected {expected}, planned {strategy}"
        assert satisfiable is True  # planted databases always satisfy the query
    record_result("E1_engine_dispatch", "\n".join(lines))
