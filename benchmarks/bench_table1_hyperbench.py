"""E1 — Table 1: degree-2 hypergraphs with ghw > k in the corpus.

Paper: of 3649 HyperBench hypergraphs, 932 have degree 2; of these 649 have
ghw > 1, 575 > 2, 506 > 3, 452 > 4 and 389 > 5.  We regenerate the table over
the synthetic HyperBench-substitute corpus (DESIGN.md, substitution 1): the
absolute counts differ, the shape — most degree-2 hypergraphs non-acyclic and
a large fraction above ghw 5 — is what is being reproduced.
"""

from repro.benchdata import degree2_ghw_table, generate_corpus, render_table1

PAPER_TABLE1 = {1: 649, 2: 575, 3: 506, 4: 452, 5: 389}
CORPUS_SCALE = 0.35  # keeps the benchmark run under a minute


def build_and_tabulate(scale: float):
    corpus = generate_corpus(seed=2022, scale=scale)
    return corpus, degree2_ghw_table(corpus)


def test_table1_regeneration(benchmark, record_result):
    corpus, table = benchmark.pedantic(
        lambda: build_and_tabulate(CORPUS_SCALE), rounds=1, iterations=1
    )
    lines = [render_table1(corpus), "", "paper reference (HyperBench):"]
    for k, amount in PAPER_TABLE1.items():
        lines.append(f"  {k:<4} {amount}")
    record_result("E1_table1", "\n".join(lines))

    amounts = dict(table)
    degree2_total = sum(1 for entry in corpus if entry.is_degree_two)
    # Shape checks mirroring the paper's reading of the table.
    assert degree2_total > 0
    assert amounts[1] > 0.5 * degree2_total          # most degree-2 entries are non-acyclic
    assert all(amounts[k] >= amounts[k + 1] for k in range(1, 5))
    assert amounts[5] > 0.1 * degree2_total          # a substantial high-ghw tail
