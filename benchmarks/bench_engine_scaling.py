"""Engine scaling benchmark: the machine-readable perf baseline.

Times the three hot paths of the evaluation engine at three scale points each
and writes the results to ``benchmarks/BENCH_engine.json``:

* ``solver_boolean`` — Boolean homomorphism (BCQ) via the generic solver, on
  near-threshold random cycle instances (the regime where backtracking does
  real work).  Both the indexed engine and the naive reference solver are
  timed, so the JSON records the speedup the hash-indexed engine delivers.
* ``semijoin_reduce`` — the two Yannakakis semijoin passes over a chain join
  tree of large random relations.
* ``ghd_eval`` — end-to-end GHD-guided Boolean evaluation (bag
  materialisation + Yannakakis) on cycle queries over large databases.
* ``engine_answer`` — the full unified-engine pipeline
  (``repro.engine.answer``: cached analysis + planning + execution) on the
  same cycle workloads, so the planner's end-to-end overhead over the raw
  evaluator is tracked.  Each point also records ``cold_plan_seconds``, the
  one-off analysis + planning cost before the cache is warm.
* ``columnar_answer`` / ``columnar_count`` — the columnar relational kernel
  (:mod:`repro.cq.columnar`, the default backend for the decomposition
  strategies) on the ``engine_answer`` workloads: projected enumeration and
  the factorized counting DP.  Each point records the columnar time (the
  gated number) plus ``tupleset_seconds``, the same plan through the
  tuple-set :class:`DecompositionBackend`, and the resulting ``speedup`` —
  the acceptance number for the columnar kernel.
* ``batch_answer_many`` — the session batch path
  (``EngineSession.answer_many``) on seeded mixed workloads
  (``repro.cq.workloads.mixed_batch``: all four regimes, repeated and
  variable-renamed queries over one database).  Each point records the
  batch time (the gated number) and ``loop_seconds``, the same workload as
  a loop of cold per-query ``Engine().answer`` calls, so the JSON tracks the
  speedup that dedup + plan reuse + parallel execution deliver.
* ``sharded_answer`` — the sharded execution path
  (``EngineSession.answer(..., shards=4)``, default thread runtime) on
  hub-cycle (wheel) workloads, fully co-partitionable on the hub variable.
  Each point records the sharded time (the gated number),
  ``single_shard_seconds`` for the same plan executed unsharded, and the
  resulting ``overhead`` ratio.  Since the runtime layer landed this is the
  *steady-state* cost: the session's partition cache holds resident,
  atom-view-memoized pieces, so repeated sharded calls skip the per-call
  re-partitioning that used to make this 2–3.5x slower than unsharded.
* ``process_sharded_answer`` — the same wheel workloads through
  ``ProcessRuntime`` at shards=4: persistent worker processes holding the
  shards resident with warm plan/atom-view caches.  Each point records the
  steady-state sharded time (the gated number), ``single_shard_seconds``
  for the unsharded path, and the resulting ``speedup`` — the acceptance
  number for the runtime layer (sharding must now *beat* the single-shard
  path, even on one core, by amortizing partition/scan/index work; real
  cores add GIL-free parallelism on top).
* ``affinity_sharded_answer`` — the owner-routed residency path: the same
  wheel workloads on a fixed two-worker ``ProcessRuntime``.  Each point
  records the warm sharded time (the gated number) plus the cold first
  call and the runtime's own shipping ledger (``shipments``,
  ``shipment_bytes``, owner-routing counters) so the baseline pins down
  how many bytes a cold start ships and that the warm path ships zero.
* ``shipping_bytes`` — the wire-format acceptance numbers: for each
  sharded-scale database, the pickled size of the compact columnar
  :class:`DatabaseWire` next to the pickled size of the tuple-set
  ``Database`` it replaces.  The gate fails if the wire form ever stops
  being smaller or grows past 2x its recorded size.
* ``skewed_answer`` — the skew-ordering acceptance numbers: the hot-pair
  join ``A(h,x,y) ∧ B(h,x,z) ∧ C(y,z)`` over databases whose ``(h,x)``
  columns concentrate 90% of their mass on three hot pairs.  The static
  overlap-greedy order always joins A⋈B first (two shared columns) and
  materialises the quadratic hot-pair blow-up; the sketches see the heavy
  hitters and route through C instead.  Each point records the cost-based
  time (the gated number), ``static_seconds`` under
  ``forced_join_ordering(ORDERING_STATIC)``, and the resulting ``speedup``
  — the gate holds the >=2x bar on every point via ``min_speedup``.
* ``skewed_sharded_answer`` — hot-key broadcast spilling end to end: a
  projected star query over hub-concentrated databases (90% of every
  spoke on two hub values), answered at ``shards=4``.  The hub values
  trip ``_detect_hot_keys`` and spill to broadcast, so the point records
  the engaged ``hot_keys`` count next to the gated sharded time plus the
  unsharded time and ``overhead`` ratio as context (broadcast replication
  is a balance/correctness play, not a single-machine speedup).
* ``incremental_refresh`` — the versioned write path: one standing
  ``IncrementalView`` (the 2-path self-join projected onto its endpoints)
  over a large sparse random graph, refreshed after appends of one tuple,
  1% and 10% of the stored rows.  Each point records the semi-naive
  refresh time (the gated number), ``from_scratch_seconds`` for a cold
  ``answer()`` on the same appended database, and the resulting
  ``speedup`` — the acceptance number for incremental evaluation (the gate
  holds the >=5x bar on the one-tuple and 1% points via ``min_speedup``).

Every workload is deterministic (fixed seeds, several seeds per scale point
summed so one lucky early exit cannot skew the number).  Run it with::

    python benchmarks/bench_engine_scaling.py            # refresh the baseline
    python benchmarks/check_regression.py                # compare against it

``benchmarks/check_regression.py`` (also exposed as ``make bench``) re-runs
the same workloads and fails when any timing regresses by more than 2x, so
the perf trajectory is tracked from this baseline onward.
"""

from __future__ import annotations

import json
import pathlib
import pickle
import platform
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.cq import generators as cqgen  # noqa: E402
from repro.cq import workloads  # noqa: E402
from repro.cq.decomposition_eval import decomposition_boolean_answer  # noqa: E402
from repro.cq.homomorphism import _solve, _solve_naive  # noqa: E402
from repro.cq.relational import NamedRelation  # noqa: E402
from repro.cq.yannakakis import JoinTree, semijoin_reduce  # noqa: E402
from repro.engine import (  # noqa: E402
    DecompositionBackend,
    Engine,
    EngineSession,
    ProcessRuntime,
)

BASELINE_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_engine.json"

# (scale label, domain size, tuples per relation); 5 seeds per point.
SOLVER_SCALES = [("small", 40, 80), ("medium", 60, 120), ("large", 80, 160)]
SOLVER_SEEDS = 5

# (scale label, tuples per join-tree relation); chain of 6 binary relations.
SEMIJOIN_SCALES = [("small", 2000), ("medium", 8000), ("large", 20000)]
SEMIJOIN_CHAIN = 6

# (scale label, cycle length, domain size, tuples per relation) — bag joins
# materialise ~tuples^2/domain rows per bag, so these stay gate-friendly.
GHD_SCALES = [("small", 6, 20, 500), ("medium", 6, 30, 1200), ("large", 6, 40, 2400)]

# End-to-end engine points reuse the GHD databases.  The workload is not
# identical to ghd_eval: answer() enumerates the projected answer set where
# ghd_eval only decides the Boolean question, so engine points sit slightly
# above the ghd_eval points by the cost of the enumeration passes.
ENGINE_SCALES = GHD_SCALES

# (scale label, distinct scenarios, copies, workload size, thread pool) for
# the session batch path — "medium" here is the 100-query mixed workload of
# the acceptance bar (25 scenarios x 4 copies, every second copy
# variable-renamed).
BATCH_SCALES = [
    ("small", 12, 4, "small", 4),
    ("medium", 25, 4, "small", 4),
    ("large", 50, 6, "small", 8),
]
BATCH_SEED = 7

# (scale label, domain size, tuples per relation) for the sharded path on
# the hub-cycle wheel (every atom carries the hub, so all relations
# co-partition and the shards are answer-disjoint).
SHARDED_SCALES = [("small", 30, 1500), ("medium", 40, 3000), ("large", 60, 6000)]
SHARDED_SHARDS = 4

# Worker count for the affinity-routing points: fixed (not cpu-derived) so
# the recorded routing/shipping ledger is machine-independent.
AFFINITY_WORKERS = 2

# The incremental-refresh family holds one standing view — the 2-path
# self-join E(x,y),E(y,z) projected onto (x,z) — over a large sparse random
# graph (domain, edges below) and times the semi-naive refresh after appends
# of three sizes: one tuple, 1% of the stored rows, 10%.  Sparse is the
# serving shape the write path exists for: a from-scratch ``answer()``
# re-materialises the full ~180k-row answer set, while the refresh joins
# only each delta edge's neighbourhood through the resident key indexes.
# The ``min_speedup`` entries are the acceptance bar the regression gate
# holds — refreshing after a <=1% append must beat from-scratch by >=5x.
# (scale label, key domain, value domain, tuples per relation) for the
# skew-ordering family.  The key domain holds the hot (h, x) pairs, the
# value domain keeps the y/z columns wide enough that set semantics cannot
# dedup the hot mass away (a hot pair carries ~hot_fraction*tuples/hot_pairs
# distinct rows only while the value domain stays larger than that).
SKEWED_SCALES = [
    ("small", 30, 1500, 1000),
    ("medium", 40, 2000, 1500),
    ("large", 50, 2500, 2250),
]
SKEWED_HOT_PAIRS = 3
SKEWED_HOT_FRACTION = 0.9
# The acceptance bar the regression gate holds on every skewed point:
# cost-based ordering must beat the forced static-greedy order by >=2x.
SKEWED_MIN_SPEEDUP = 2.0

# (scale label, domain, tuples per relation) for the hot-key spilling
# family — domain >= tuples so the two hub values keep their 90% mass
# under set semantics (see SKEWED_SCALES).
SKEWED_SHARDED_SCALES = [
    ("small", 2000, 1500),
    ("medium", 4000, 3000),
    ("large", 8000, 6000),
]

INCREMENTAL_GRAPH = (20000, 60000)
INCREMENTAL_POINTS = [
    ("one-tuple", None, 5.0),
    ("pct1", 0.01, 5.0),
    ("pct10", 0.10, None),
]


# Every measurement is the minimum over REPEATS runs: the min is the noise-
# robust estimator for a deterministic workload (anything above it is
# scheduler/GC interference), which keeps the 2x regression gate stable even
# for points in the tens-of-milliseconds range.
REPEATS = 3


def _timed(function) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
        if best > 1.0:
            # Second-scale workloads sit far above the noise floor already;
            # repeating them would triple the gate's wall-clock for nothing.
            break
    return best


def _boolean(solver, query, database) -> bool:
    for _ in solver(query, database):
        return True
    return False


def bench_solver(include_naive: bool = True) -> list[dict]:
    points = []
    for label, domain, tuples in SOLVER_SCALES:
        query = cqgen.cycle_query(6)
        databases = [
            cqgen.random_database(query, domain, tuples, seed=seed)
            for seed in range(SOLVER_SEEDS)
        ]
        indexed = sum(
            _timed(lambda db=db: _boolean(_solve, query, db)) for db in databases
        )
        point = {
            "scale": label,
            "query": "cycle6",
            "domain": domain,
            "tuples_per_relation": tuples,
            "seeds": SOLVER_SEEDS,
            "indexed_seconds": indexed,
        }
        if include_naive:
            naive = sum(
                _timed(lambda db=db: _boolean(_solve_naive, query, db))
                for db in databases
            )
            point["naive_seconds"] = naive
            point["speedup"] = naive / indexed if indexed else float("inf")
        points.append(point)
    return points


def _chain_join_tree(tuples: int) -> JoinTree:
    import random

    rng = random.Random(tuples)
    relations = {}
    parent = {}
    for i in range(SEMIJOIN_CHAIN):
        rows = {
            (rng.randrange(tuples // 4), rng.randrange(tuples // 4))
            for _ in range(tuples)
        }
        relations[i] = NamedRelation((f"x{i}", f"x{i + 1}"), rows)
        parent[i] = i - 1 if i else None
    return JoinTree(relations, parent)


def bench_semijoin() -> list[dict]:
    points = []
    for label, tuples in SEMIJOIN_SCALES:
        tree = _chain_join_tree(tuples)
        seconds = _timed(lambda: semijoin_reduce(tree))
        points.append(
            {
                "scale": label,
                "chain_length": SEMIJOIN_CHAIN,
                "tuples_per_relation": tuples,
                "indexed_seconds": seconds,
            }
        )
    return points


def bench_ghd_eval() -> list[dict]:
    points = []
    for label, length, domain, tuples in GHD_SCALES:
        query = cqgen.cycle_query(length)
        database = cqgen.random_database(query, domain, tuples, seed=97)
        seconds = _timed(lambda: decomposition_boolean_answer(query, database))
        points.append(
            {
                "scale": label,
                "query": f"cycle{length}",
                "domain": domain,
                "tuples_per_relation": tuples,
                "indexed_seconds": seconds,
            }
        )
    return points


def bench_engine_answer() -> list[dict]:
    points = []
    for label, length, domain, tuples in ENGINE_SCALES:
        # Projected onto one variable: a full cycle query on a near-threshold
        # random database has a combinatorial answer set, which would time
        # the materialisation of the output rather than the engine.
        query = cqgen.cycle_query(length).project(["x0"])
        database = cqgen.random_database(query, domain, tuples, seed=97)
        engine = Engine()
        # The planner clocks itself; the first plan is the cold (uncached) one.
        cold_plan = engine.plan(query).planning_seconds
        seconds = _timed(lambda: engine.answer(query, database))
        points.append(
            {
                "scale": label,
                "query": f"cycle{length}",
                "domain": domain,
                "tuples_per_relation": tuples,
                "indexed_seconds": seconds,
                "cold_plan_seconds": cold_plan,
            }
        )
    return points


def bench_columnar_answer(include_tupleset: bool = True) -> list[dict]:
    """The columnar kernel on the engine_answer workloads.

    ``indexed_seconds`` (the gated number) is the engine's default dispatch,
    which now evaluates the decomposition strategies columnar-side:
    interned-id hash joins plus the memoized columnar atom views — the
    steady-state serving cost.  ``tupleset_seconds`` runs the same plan
    through the tuple-set :class:`DecompositionBackend` for the recorded
    speedup (historical context, like the naive solver elsewhere).
    """
    points = []
    for label, length, domain, tuples in ENGINE_SCALES:
        query = cqgen.cycle_query(length).project(["x0"])
        database = cqgen.random_database(query, domain, tuples, seed=97)
        engine = Engine()
        plan = engine.plan(query)
        columnar = _timed(lambda: engine.answer(query, database, plan=plan))
        point = {
            "scale": label,
            "query": f"cycle{length}",
            "domain": domain,
            "tuples_per_relation": tuples,
            "indexed_seconds": columnar,
        }
        if include_tupleset:
            tupleset_backend = DecompositionBackend(plan.strategy)
            tupleset = _timed(
                lambda: tupleset_backend.answers(plan.query, database, plan)
            )
            point["tupleset_seconds"] = tupleset
            point["speedup"] = tupleset / columnar if columnar else float("inf")
        points.append(point)
    return points


def bench_columnar_count(include_tupleset: bool = True) -> list[dict]:
    """The factorized columnar counting DP on the full cycle queries.

    Full queries take the Proposition 4.14 DP in both kernels — the
    comparison isolates the representation (packed-int key grouping over
    weight vectors vs tuple-keyed dicts over row sets); neither side ever
    materialises the combinatorial answer set.
    """
    points = []
    for label, length, domain, tuples in ENGINE_SCALES:
        query = cqgen.cycle_query(length)
        database = cqgen.random_database(query, domain, tuples, seed=97)
        engine = Engine()
        plan = engine.plan(query)
        columnar = _timed(lambda: engine.count(query, database, plan=plan))
        point = {
            "scale": label,
            "query": f"cycle{length}",
            "domain": domain,
            "tuples_per_relation": tuples,
            "indexed_seconds": columnar,
        }
        if include_tupleset:
            tupleset_backend = DecompositionBackend(plan.strategy)
            tupleset = _timed(
                lambda: tupleset_backend.count(plan.query, database, plan)
            )
            point["tupleset_seconds"] = tupleset
            point["speedup"] = tupleset / columnar if columnar else float("inf")
        points.append(point)
    return points


def bench_batch_answer(include_loop: bool = True) -> list[dict]:
    points = []
    for label, distinct, copies, size, parallel in BATCH_SCALES:
        queries, database = workloads.mixed_batch(
            seed=BATCH_SEED, copies=copies, size=size, distinct=distinct
        )

        def batch() -> None:
            # A fresh session per run: the measurement is the cold batch,
            # including planning — exactly what the loop below pays per query.
            EngineSession().answer_many(queries, database, parallel=parallel)

        def loop() -> None:
            for query in queries:
                Engine().answer(query, database)

        point = {
            "scale": label,
            "queries": len(queries),
            "distinct_scenarios": distinct,
            "parallel": parallel,
            "workload_seed": BATCH_SEED,
            "indexed_seconds": _timed(batch),
        }
        if include_loop:
            point["loop_seconds"] = _timed(loop)
            point["speedup"] = (
                point["loop_seconds"] / point["indexed_seconds"]
                if point["indexed_seconds"]
                else float("inf")
            )
        points.append(point)
    return points


def bench_sharded_answer(include_single: bool = True) -> list[dict]:
    points = []
    for label, domain, tuples in SHARDED_SCALES:
        query = cqgen.hub_cycle_query(4)
        database = cqgen.random_database(query, domain, tuples, seed=97)
        session = EngineSession()
        plan = session.plan(query)
        sharded = _timed(
            lambda: session.answer(query, database, plan=plan, shards=SHARDED_SHARDS)
        )
        point = {
            "scale": label,
            "query": "hub_cycle4",
            "domain": domain,
            "tuples_per_relation": tuples,
            "shards": SHARDED_SHARDS,
            "indexed_seconds": sharded,
        }
        if include_single:
            single = _timed(lambda: session.answer(query, database, plan=plan))
            point["single_shard_seconds"] = single
            point["overhead"] = sharded / single if single else float("inf")
        points.append(point)
    return points


def bench_process_sharded(include_single: bool = True) -> list[dict]:
    points = []
    for label, domain, tuples in SHARDED_SCALES:
        query = cqgen.hub_cycle_query(4)
        database = cqgen.random_database(query, domain, tuples, seed=97)
        session = EngineSession()
        plan = session.plan(query)
        runtime = ProcessRuntime()
        try:
            # First call ships the shards and builds the resident atom views;
            # the timed runs below are the steady-state serving cost.
            session.answer(
                query, database, plan=plan, shards=SHARDED_SHARDS, runtime=runtime
            )
            sharded = _timed(
                lambda: session.answer(
                    query, database, plan=plan, shards=SHARDED_SHARDS, runtime=runtime
                )
            )
            point = {
                "scale": label,
                "query": "hub_cycle4",
                "domain": domain,
                "tuples_per_relation": tuples,
                "shards": SHARDED_SHARDS,
                "workers": runtime.max_workers,
                "indexed_seconds": sharded,
            }
            if include_single:
                single = _timed(lambda: session.answer(query, database, plan=plan))
                point["single_shard_seconds"] = single
                point["speedup"] = single / sharded if sharded else float("inf")
            points.append(point)
        finally:
            runtime.close()
    return points


def bench_affinity_sharded() -> list[dict]:
    """Owner-routed residency: warm serving cost plus the shipping ledger.

    The cold first call partitions, assigns owners, and push-ships every
    shard as compact wire bytes; the timed runs are the warm steady state,
    where each worker already holds its shards and the coordinator sends
    token-only tasks.  The runtime's own counters are recorded so the
    baseline documents the cold shipping cost (``shipment_bytes``) and
    that warm calls ship nothing.
    """
    points = []
    for label, domain, tuples in SHARDED_SCALES:
        query = cqgen.hub_cycle_query(4)
        database = cqgen.random_database(query, domain, tuples, seed=97)
        session = EngineSession()
        plan = session.plan(query)
        runtime = ProcessRuntime(max_workers=AFFINITY_WORKERS)
        try:
            start = time.perf_counter()
            session.answer(
                query, database, plan=plan, shards=SHARDED_SHARDS, runtime=runtime
            )
            cold = time.perf_counter() - start
            warm = _timed(
                lambda: session.answer(
                    query, database, plan=plan, shards=SHARDED_SHARDS, runtime=runtime
                )
            )
            stats = runtime.stats()
            points.append(
                {
                    "scale": label,
                    "query": "hub_cycle4",
                    "domain": domain,
                    "tuples_per_relation": tuples,
                    "shards": SHARDED_SHARDS,
                    "workers": AFFINITY_WORKERS,
                    "indexed_seconds": warm,
                    "cold_call_seconds": cold,
                    "shipments": stats["shipments"],
                    "shipment_bytes": stats["shipment_bytes"],
                    "tasks_dispatched": stats["tasks_dispatched"],
                    "tasks_owner_routed": stats["tasks_owner_routed"],
                }
            )
        finally:
            runtime.close()
    return points


def bench_shipping_bytes() -> list[dict]:
    """Wire-format sizes: what a shard shipment costs on the wire.

    No timings — the point records the pickled size of the compact
    columnar wire form next to the pickled tuple-set ``Database``, on the
    same databases the sharded benchmarks evaluate.  Deterministic, so the
    gate can hold the ratio rather than skip the family as noise.
    """
    points = []
    for label, domain, tuples in SHARDED_SCALES:
        query = cqgen.hub_cycle_query(4)
        database = cqgen.random_database(query, domain, tuples, seed=97)
        wire = len(pickle.dumps(database.to_wire(), pickle.HIGHEST_PROTOCOL))
        plain = len(pickle.dumps(database, pickle.HIGHEST_PROTOCOL))
        points.append(
            {
                "scale": label,
                "query": "hub_cycle4",
                "domain": domain,
                "tuples_per_relation": tuples,
                "wire_bytes": wire,
                "pickled_bytes": plain,
                "ratio": wire / plain if plain else float("inf"),
            }
        )
    return points


def _sparse_graph(domain: int, edges: int):
    """A deterministic sparse random edge relation (avg degree edges/domain)."""
    import random

    from repro.cq.database import Database

    rng = random.Random(97)
    database = Database()
    for _ in range(edges):
        database.add_fact("E", (rng.randrange(domain), rng.randrange(domain)))
    return database


def _append_fresh_edges(database, count, domain, rng) -> None:
    """Append ``count`` genuinely new edges drawn from the same domain so
    they join with existing data."""
    relation = database.relations["E"]
    for _ in range(count):
        while True:
            row = (rng.randrange(domain), rng.randrange(domain))
            if row not in relation.tuples:
                break
        database.add_fact("E", row)


def bench_incremental_refresh() -> list[dict]:
    """Semi-naive refresh latency of a standing :class:`IncrementalView`.

    A timed refresh consumes its delta — repeating it would measure a no-op
    — so every repeat rebuilds the database and the view from scratch (the
    initial full evaluation is not timed), appends a fresh deterministic
    batch, and times exactly one refresh; the min is kept as elsewhere.
    One untimed single-edge warm-up refresh runs first: it builds the
    tuple-set atom views and their key indexes (the initial evaluation
    runs columnar-side and warms neither), which is a once-per-view cost a
    standing serving view amortises — the gated number is the steady
    state.  ``from_scratch_seconds`` answers the same post-append database
    through a cold session, and the ratio is the recorded (and gated)
    speedup.
    """
    import random

    from repro.cq.query import Atom, ConjunctiveQuery

    domain, edges = INCREMENTAL_GRAPH
    query = ConjunctiveQuery(
        [Atom("E", ("x", "y")), Atom("E", ("y", "z"))]
    ).project(["x", "z"])
    points = []
    for label, fraction, min_speedup in INCREMENTAL_POINTS:
        refresh = float("inf")
        from_scratch = None
        mode = None
        delta_rows = 0
        for repeat in range(REPEATS):
            database = _sparse_graph(domain, edges)
            stored = sum(len(r) for r in database.relations.values())
            count = 1 if fraction is None else max(1, int(stored * fraction))
            session = EngineSession()
            view = session.incremental_view(query, database)
            view.refresh()
            rng = random.Random(f"incremental|{label}|{repeat}")
            _append_fresh_edges(database, 1, domain, rng)
            view.refresh()
            _append_fresh_edges(database, count, domain, rng)
            start = time.perf_counter()
            result = view.refresh()
            refresh = min(refresh, time.perf_counter() - start)
            incremental = result.timings["incremental"]
            mode = incremental["mode"]
            delta_rows = incremental["delta_rows"]
            if from_scratch is None:
                from_scratch = _timed(
                    lambda db=database: EngineSession().answer(query, db)
                )
        point = {
            "scale": label,
            "query": "path2",
            "domain": domain,
            "edges": edges,
            "delta_rows": delta_rows,
            "mode": mode,
            "indexed_seconds": refresh,
            "from_scratch_seconds": from_scratch,
            "speedup": from_scratch / refresh if refresh else float("inf"),
        }
        if min_speedup is not None:
            point["min_speedup"] = min_speedup
        points.append(point)
    return points


def _skewed_join_query():
    """The hot-pair join, projected so the timing is the join work and not
    the materialisation of the (h, x, y, z) output."""
    from repro.cq.query import Atom, ConjunctiveQuery

    return ConjunctiveQuery(
        [Atom("A", ["h", "x", "y"]), Atom("B", ["h", "x", "z"]), Atom("C", ["y", "z"])]
    ).project(["h"])


def _skewed_join_database(key_domain: int, value_domain: int, tuples: int, seed: int = 97):
    """A and B concentrate 90% of their (h, x) mass on three hot pairs while
    y/z stay uniform over the wide value domain; C is uniform.  Joining A⋈B
    first (the static overlap-greedy choice: two shared columns) therefore
    materialises ~(hot rows)^2/hot_pairs intermediate rows, while routing
    through C first stays near-linear — the shape the sketches must detect."""
    import random

    from repro.cq.database import Database, Relation

    rng = random.Random(seed)
    database = Database()
    hot = [
        (rng.randrange(key_domain), rng.randrange(key_domain))
        for _ in range(SKEWED_HOT_PAIRS)
    ]
    for name in ("A", "B"):
        relation = Relation(name, 3)
        while len(relation.tuples) < tuples:
            if rng.random() < SKEWED_HOT_FRACTION:
                h, x = hot[rng.randrange(SKEWED_HOT_PAIRS)]
            else:
                h, x = rng.randrange(key_domain), rng.randrange(key_domain)
            relation.add((h, x, rng.randrange(value_domain)))
        database.add_relation(relation)
    relation = Relation("C", 2)
    while len(relation.tuples) < tuples:
        relation.add((rng.randrange(value_domain), rng.randrange(value_domain)))
    database.add_relation(relation)
    return database


def bench_skewed_answer() -> list[dict]:
    """Cost-based vs forced-static ordering on the hot-pair join.

    ``indexed_seconds`` is the default cost-based path (the gated number);
    ``static_seconds`` re-answers the same plan under
    ``forced_join_ordering(ORDERING_STATIC)``.  The static time is always
    recorded — like the incremental family's from-scratch comparison —
    because the regression gate re-checks the ``min_speedup`` ratio, not
    just the timing.  The warm first call's estimates-vs-actuals record is
    kept on the point so the baseline documents the sketches steering the
    order (``estimated_rows`` within a small factor of ``actual_rows``).
    """
    from repro.cq.statistics import ORDERING_STATIC, forced_join_ordering

    query = _skewed_join_query()
    points = []
    for label, key_domain, value_domain, tuples in SKEWED_SCALES:
        database = _skewed_join_database(key_domain, value_domain, tuples)
        session = EngineSession()
        plan = session.plan(query)
        warm = session.answer(query, database, plan=plan)
        indexed = _timed(lambda: session.answer(query, database, plan=plan))

        def static() -> None:
            with forced_join_ordering(ORDERING_STATIC):
                session.answer(query, database, plan=plan)

        static_seconds = _timed(static)
        stats = warm.stats or {}
        points.append(
            {
                "scale": label,
                "query": "hotpair-triangle",
                "key_domain": key_domain,
                "value_domain": value_domain,
                "tuples_per_relation": tuples,
                "hot_pairs": SKEWED_HOT_PAIRS,
                "hot_fraction": SKEWED_HOT_FRACTION,
                "indexed_seconds": indexed,
                "static_seconds": static_seconds,
                "speedup": static_seconds / indexed if indexed else float("inf"),
                "min_speedup": SKEWED_MIN_SPEEDUP,
                "estimated_rows": stats.get("estimated_rows", 0),
                "actual_rows": stats.get("actual_rows", 0),
                "prefilter_rows_dropped": stats.get("prefilter_rows_dropped", 0),
            }
        )
    return points


def bench_skewed_sharded_answer(include_single: bool = True) -> list[dict]:
    """Hot-key broadcast spilling through the sharded session path.

    A projected star query over hub-concentrated spokes: the two hub
    values carry 90% of every relation, so hashing the hub variable alone
    would put 90% of the data (and answers) on one shard.
    ``_detect_hot_keys`` trips on both values and ``Database.partition``
    spills them to broadcast.  The sharded time gates (the overhead of
    replication must stay bounded); the recorded ``hot_keys`` count pins
    the spilling path as actually engaged in the baseline.
    """
    base = cqgen.star_query(3)
    query = base.project(["c", "x0"])
    points = []
    for label, domain, tuples in SKEWED_SHARDED_SCALES:
        database = cqgen.hub_database(base, domain, tuples, seed=97, hot_values=2)
        session = EngineSession()
        plan = session.plan(query)
        first = session.answer(query, database, plan=plan, shards=SHARDED_SHARDS)
        sharded = _timed(
            lambda: session.answer(query, database, plan=plan, shards=SHARDED_SHARDS)
        )
        point = {
            "scale": label,
            "query": "hub_star3",
            "domain": domain,
            "tuples_per_relation": tuples,
            "shards": SHARDED_SHARDS,
            "hot_keys": len(first.sharding.get("hot_keys", ())),
            "indexed_seconds": sharded,
        }
        if include_single:
            single = _timed(lambda: session.answer(query, database, plan=plan))
            point["single_shard_seconds"] = single
            point["overhead"] = sharded / single if single else float("inf")
        points.append(point)
    return points


def run_benchmarks(include_naive: bool = True) -> dict:
    """Run all engine benchmarks and return the JSON-ready result document."""
    return {
        "schema": 1,
        "generated_by": "benchmarks/bench_engine_scaling.py",
        "python": platform.python_version(),
        "benchmarks": {
            "solver_boolean": bench_solver(include_naive=include_naive),
            "semijoin_reduce": bench_semijoin(),
            "ghd_eval": bench_ghd_eval(),
            "engine_answer": bench_engine_answer(),
            # The columnar kernel on the engine workloads; the tuple-set
            # comparison numbers are context, only the columnar time gates.
            "columnar_answer": bench_columnar_answer(
                include_tupleset=include_naive
            ),
            "columnar_count": bench_columnar_count(
                include_tupleset=include_naive
            ),
            # The comparison loop is historical context like the naive
            # solver: only the batch time itself is gated.
            "batch_answer_many": bench_batch_answer(include_loop=include_naive),
            # The single-shard time is context too: only the sharded time
            # is gated (sharding is a scale-out play; the gate tracks that
            # its overhead stays bounded, not that it is faster).
            "sharded_answer": bench_sharded_answer(include_single=include_naive),
            # The acceptance points for the runtime layer: process-sharded
            # steady state must beat the single-shard path wall-clock.
            "process_sharded_answer": bench_process_sharded(
                include_single=include_naive
            ),
            # Owner-routed residency: warm serving time gates; the cold
            # call and the shipping ledger are recorded context.
            "affinity_sharded_answer": bench_affinity_sharded(),
            # Wire-format sizes (no timings): gated on the wire form
            # staying smaller than the pickled database and within 2x of
            # its recorded size.
            "shipping_bytes": bench_shipping_bytes(),
            # The versioned write path: semi-naive refresh after appends of
            # three sizes.  The from-scratch comparison is always recorded —
            # the gate holds the >=5x speedup bar on the small-delta points.
            "incremental_refresh": bench_incremental_refresh(),
            # Skew-ordering acceptance: the forced-static comparison is
            # always recorded (the gate holds the >=2x cost-vs-static
            # ratio on every point, not just the timing).
            "skewed_answer": bench_skewed_answer(),
            # Hot-key broadcast spilling: the sharded time gates; the
            # unsharded comparison is context like the other shard families.
            "skewed_sharded_answer": bench_skewed_sharded_answer(
                include_single=include_naive
            ),
        },
    }


def write_baseline(path: pathlib.Path = BASELINE_PATH) -> dict:
    results = run_benchmarks()
    path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    return results


def main() -> int:
    results = write_baseline()
    print(f"wrote {BASELINE_PATH}")
    for name, points in results["benchmarks"].items():
        for point in points:
            if "indexed_seconds" not in point:
                print(
                    f"  {name:<16} {point['scale']:<7} "
                    f"wire {point['wire_bytes']}B vs pickled "
                    f"{point['pickled_bytes']}B ({point['ratio']:.2f}x)"
                )
                continue
            extra = ""
            if "naive_seconds" in point:
                extra = f"  (naive {point['naive_seconds']:.3f}s, {point['speedup']:.1f}x speedup)"
            elif "tupleset_seconds" in point:
                extra = (
                    f"  (tuple-set {point['tupleset_seconds']:.3f}s, "
                    f"{point['speedup']:.1f}x speedup)"
                )
            elif "loop_seconds" in point:
                extra = f"  (cold loop {point['loop_seconds']:.3f}s, {point['speedup']:.1f}x speedup)"
            elif "static_seconds" in point:
                extra = (
                    f"  (forced static {point['static_seconds']:.3f}s, "
                    f"{point['speedup']:.0f}x speedup, "
                    f"est {point['estimated_rows']} vs actual "
                    f"{point['actual_rows']} rows)"
                )
            elif "from_scratch_seconds" in point:
                extra = (
                    f"  (from scratch {point['from_scratch_seconds']:.3f}s, "
                    f"{point['speedup']:.0f}x speedup, "
                    f"{point['delta_rows']} delta rows, {point['mode']})"
                )
            elif "single_shard_seconds" in point and "speedup" in point:
                extra = (
                    f"  (single shard {point['single_shard_seconds']:.3f}s, "
                    f"{point['speedup']:.2f}x speedup over unsharded)"
                )
            elif "single_shard_seconds" in point:
                extra = (
                    f"  (single shard {point['single_shard_seconds']:.3f}s, "
                    f"{point['overhead']:.1f}x sharding overhead)"
                )
            elif "shipment_bytes" in point:
                extra = (
                    f"  (cold {point['cold_call_seconds']:.3f}s, "
                    f"{point['shipments']} shipments, "
                    f"{point['shipment_bytes']}B shipped)"
                )
            print(
                f"  {name:<16} {point['scale']:<7} {point['indexed_seconds']:.4f}s{extra}"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
