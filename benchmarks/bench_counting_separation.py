"""E8 — the counting analogue (Theorem 4.16 shape).

For full CQs of bounded ghw, #CQ is polynomial via the join-tree dynamic
program; the benchmark compares it with brute-force counting on proper-
colouring instances (where the exact counts are known analytically for
cycles) and checks parsimony of the counting reduction (Theorem 4.15).
"""

import time

from repro.cq import generators as cqgen
from repro.cq.counting import count_answers_via_join_tree
from repro.cq.decomposition_eval import build_bag_join_tree, decomposition_count_answers
from repro.cq.homomorphism import count_answers
from repro.dilutions import DilutionSequence, MergeOnVertex
from repro.hypergraphs import Hypergraph
from repro.reductions import counting_reduction
from repro.reductions.parsimonious import verify_parsimony
from repro.widths.ghw import ghw_upper_bound

CYCLE_LENGTHS = [4, 5, 6]
COLOURS = 3


def expected_colourings(length: int, colours: int) -> int:
    return (colours - 1) ** length + (-1) ** length * (colours - 1)


def run_counting():
    rows = []
    for length in CYCLE_LENGTHS:
        query = cqgen.cycle_query(length)
        database = cqgen.grid_constraint_database(query, colours=COLOURS)
        start = time.perf_counter()
        via_dp = decomposition_count_answers(query, database)
        dp_time = time.perf_counter() - start
        start = time.perf_counter()
        via_bruteforce = count_answers(query, database)
        brute_time = time.perf_counter() - start
        rows.append((length, expected_colourings(length, COLOURS), via_dp, via_bruteforce, dp_time, brute_time))

    # Parsimonious counting reduction on a merged-cycle source.
    source = Hypergraph(edges=[{"x0", "v"}, {"v", "x1"}, {"x1", "x2"}, {"x2", "x3"}, {"x3", "x0"}])
    sequence = DilutionSequence([MergeOnVertex("v")])
    diluted = sequence.apply(source)
    query = cqgen.query_from_hypergraph(diluted)
    database = cqgen.grid_constraint_database(query, colours=COLOURS)
    reduction = counting_reduction(query, database, source, sequence)
    parsimony = verify_parsimony(reduction)
    return rows, parsimony


def test_counting_separation(benchmark, record_result):
    rows, parsimony = benchmark.pedantic(run_counting, rounds=1, iterations=1)
    lines = [
        f"#CQ on proper {COLOURS}-colouring instances (cycle queries):",
        "  n   expected  join-tree-DP  brute-force  dp_seconds  brute_seconds",
    ]
    for length, expected, dp, brute, dp_time, brute_time in rows:
        lines.append(
            f"  {length:<3} {expected:<9} {dp:<13} {brute:<12} {dp_time:<11.4f} {brute_time:.4f}"
        )
    lines.append(f"counting reduction parsimonious: {parsimony}")
    record_result("E8_counting", "\n".join(lines))

    for length, expected, dp, brute, _, _ in rows:
        assert dp == expected == brute
    assert parsimony
