"""E7 — the tractability separation predicted by Theorems 4.1 / 4.12.

Bounded-ghw degree-2 query classes (chains, cycles) are answered in
polynomial time by the GHD-guided evaluator, while the unbounded-ghw jigsaw
class makes the *generic* solver's work grow much faster with the instance
size.  Absolute times depend on the Python substrate; the reproduced shape is
who scales gracefully and who does not.
"""

import time

from repro.cq import generators as cqgen
from repro.cq.decomposition_eval import decomposition_boolean_answer
from repro.cq.homomorphism import boolean_answer

BOUNDED_CLASSES = {
    "chain": lambda size: cqgen.chain_query(size),
    "cycle": lambda size: cqgen.cycle_query(max(3, size)),
}
SIZES = [3, 5, 7]
JIGSAW_DIMENSIONS = [(2, 2), (2, 3), (3, 3)]


def timed(function) -> float:
    start = time.perf_counter()
    function()
    return time.perf_counter() - start


def run_separation():
    rows = []
    for name, factory in BOUNDED_CLASSES.items():
        for size in SIZES:
            query = factory(size)
            database = cqgen.grid_constraint_database(query, colours=3)
            elapsed = timed(lambda: decomposition_boolean_answer(query, database))
            rows.append(("bounded-ghw/" + name, size, len(query.atoms), elapsed))
    for rows_, cols in JIGSAW_DIMENSIONS:
        query = cqgen.jigsaw_query(rows_, cols)
        database = cqgen.planted_database(query, 3, 9, seed=rows_ * cols)
        generic = timed(lambda: boolean_answer(query, database))
        guided = timed(lambda: decomposition_boolean_answer(query, database))
        rows.append((f"jigsaw-{rows_}x{cols}/generic", rows_ * cols, len(query.atoms), generic))
        rows.append((f"jigsaw-{rows_}x{cols}/ghd", rows_ * cols, len(query.atoms), guided))
    return rows


def test_tractability_separation(benchmark, record_result):
    rows = benchmark.pedantic(run_separation, rounds=1, iterations=1)
    lines = [
        "Tractability separation (Theorem 4.1 shape):",
        "  class                       size  atoms  seconds",
    ]
    for name, size, atoms, elapsed in rows:
        lines.append(f"  {name:<27} {size:<5} {atoms:<6} {elapsed:.4f}")
    record_result("E7_separation", "\n".join(lines))

    bounded_times = [t for name, _, _, t in rows if name.startswith("bounded")]
    jigsaw_generic = [t for name, _, _, t in rows if name.endswith("/generic")]
    # Bounded-ghw classes stay fast; the generic solver's cost on jigsaws
    # grows with the dimension.
    assert max(bounded_times) < 2.0
    assert jigsaw_generic == sorted(jigsaw_generic) or jigsaw_generic[-1] >= jigsaw_generic[0]
