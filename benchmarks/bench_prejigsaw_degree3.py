"""E10 — pre-jigsaws and the bounded-degree generalisation (Theorem 5.2).

Theorem 5.2 replaces jigsaws by pre-jigsaws for degree d > 2.  The benchmark
validates planted pre-jigsaw certificates of degree 2 and 3, confirms that the
degree-2 ones dilute back to jigsaws by merging along their connecting paths,
and that the same merging strategy is (correctly) refused for degree 3 — the
compromise discussed after Definition 5.1.
"""

from repro.hypergraphs import generators
from repro.hypergraphs.isomorphism import are_isomorphic
from repro.jigsaws import planted_prejigsaw, prejigsaw_to_jigsaw_dilution

DIMENSIONS = [(2, 2), (3, 3), (4, 4)]


def run_prejigsaw_suite():
    rows = []
    for n, m in DIMENSIONS:
        for degree in (2, 3):
            if degree == 3 and n * m <= 4:
                continue  # a 2x2 jigsaw has no bridge vertices to raise to degree 3
            certificate = planted_prejigsaw(n, m, degree=degree)
            valid = certificate.is_valid()
            outcome = prejigsaw_to_jigsaw_dilution(certificate)
            if outcome is None:
                dilutes = False
            else:
                _, result = outcome
                dilutes = are_isomorphic(result, generators.jigsaw(n, m))
            rows.append((n, m, degree, certificate.hypergraph.degree(), valid, dilutes))
    return rows


def test_prejigsaw_degree3(benchmark, record_result):
    rows = benchmark.pedantic(run_prejigsaw_suite, rounds=1, iterations=1)
    lines = [
        "Pre-jigsaws (Definition 5.1 / Theorem 5.2):",
        "  n  m  requested_degree  actual_degree  certificate_valid  dilutes_to_jigsaw",
    ]
    for n, m, degree, actual, valid, dilutes in rows:
        lines.append(f"  {n}  {m}  {degree:<17} {actual:<14} {valid!s:<18} {dilutes}")
    record_result("E10_prejigsaw", "\n".join(lines))

    for n, m, degree, actual, valid, dilutes in rows:
        assert valid
        assert actual == degree
        if degree == 2:
            assert dilutes
        else:
            assert not dilutes
