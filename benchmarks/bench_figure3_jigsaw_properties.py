"""E4 — Figure 3: the n x m jigsaw hypergraph and its width profile.

Figure 3 depicts the 3x4 jigsaw.  The benchmark constructs jigsaws of growing
dimension, validates the Definition 4.2 properties, and reports the certified
ghw bounds — the series that powers the Section 4.2 lower-bound argument
(ghw of the n x n jigsaw grows with n).
"""

from repro.hypergraphs import generators
from repro.jigsaws.jigsaw import verify_jigsaw_properties
from repro.widths.ghw import ghw

DIMENSIONS = [(2, 2), (3, 3), (3, 4), (4, 4)]


def jigsaw_profile():
    rows = []
    for n, m in DIMENSIONS:
        jig = generators.jigsaw(n, m)
        checks = verify_jigsaw_properties(jig, n, m)
        budget = min(n, m) if min(n, m) <= 3 else 3
        bounds = ghw(jig, separator_budget=budget)
        rows.append((n, m, jig.num_vertices, jig.num_edges, bounds.lower, bounds.upper, all(checks.values())))
    return rows


def test_figure3_jigsaw_series(benchmark, record_result):
    rows = benchmark.pedantic(jigsaw_profile, rounds=1, iterations=1)
    lines = [
        "Figure 3 (jigsaw hypergraphs): definition checks and ghw bounds",
        "  n  m  |V|  |E|  ghw_lower  ghw_upper  definition_ok",
    ]
    for n, m, nv, ne, lower, upper, ok in rows:
        lines.append(f"  {n}  {m}  {nv:<4} {ne:<4} {lower:<10} {upper:<10} {ok}")
    record_result("E4_figure3", "\n".join(lines))

    for n, m, _, _, lower, upper, ok in rows:
        assert ok
        assert upper <= min(n, m) + 1
        if min(n, m) <= 3:
            assert lower >= min(n, m)
    # The lower-bound series grows with the dimension.
    lowers = [row[4] for row in rows]
    assert lowers == sorted(lowers)
