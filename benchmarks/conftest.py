"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see DESIGN.md's
per-experiment index).  Besides timing the relevant computation with
pytest-benchmark, each bench writes the regenerated rows/series to
``benchmarks/results/<experiment>.txt`` so the artefacts survive output
capturing and can be diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """Write (and echo) the regenerated artefact for one experiment."""

    def _record(experiment: str, text: str) -> None:
        path = results_dir / f"{experiment}.txt"
        path.write_text(text + "\n")
        print(f"\n[{experiment}]\n{text}")

    return _record
