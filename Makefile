PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-baseline workload-smoke

test:
	$(PYTHON) -m pytest -x -q

# One-seed smoke of the scenario generator + differential conformance
# harness: every registered strategy vs the naive solver on a small fresh
# workload.  Override the seed with WORKLOAD_SEEDS=n.
workload-smoke:
	WORKLOAD_SEEDS=$(or $(WORKLOAD_SEEDS),0) $(PYTHON) -m pytest -q \
		tests/workloads tests/engine/test_differential.py tests/engine/test_session.py

# Perf-regression gate: re-run the engine benchmarks and fail on >2x slowdown
# against benchmarks/BENCH_engine.json.
bench:
	$(PYTHON) -m pytest -q -m bench benchmarks/check_regression.py

# Refresh the recorded baseline (only after verifying a genuine speedup).
bench-baseline:
	$(PYTHON) benchmarks/bench_engine_scaling.py
