PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-baseline workload-smoke shard-smoke proc-smoke columnar-smoke affinity-smoke service-smoke delta-smoke skew-smoke

test:
	$(PYTHON) -m pytest -x -q

# One-seed smoke of the scenario generator + differential conformance
# harness: every registered strategy vs the naive solver on a small fresh
# workload.  Override the seed with WORKLOAD_SEEDS=n.  The two smoke targets
# partition the harness on the "shard" keyword — run both for full coverage
# without duplicating the slowest tests.
workload-smoke:
	WORKLOAD_SEEDS=$(or $(WORKLOAD_SEEDS),0) $(PYTHON) -m pytest -q \
		tests/workloads tests/engine/test_differential.py \
		tests/engine/test_session.py -k "not shard"

# One-seed smoke of the sharded execution path: the sharding unit tests plus
# the sharded differential checks (shards 1/2/4/8, co-partitioned and
# broadcast rungs) vs the naive solver.  Override the seed with
# WORKLOAD_SEEDS=n.
shard-smoke:
	WORKLOAD_SEEDS=$(or $(WORKLOAD_SEEDS),0) $(PYTHON) -m pytest -q \
		tests/engine/test_sharding.py tests/workloads \
		tests/engine/test_differential.py tests/engine/test_session.py -k shard

# One-seed smoke of the execution-runtime layer: the runtime unit tests and
# serialization round-trips, then the differential runtime pass (every
# registered runtime — inline/thread/process — across every regime and
# database flavour at shards 1/2/4) vs the naive solver.  Override the seed
# with WORKLOAD_SEEDS=n.
proc-smoke:
	$(PYTHON) -m pytest -q tests/engine/test_runtime.py tests/engine/test_pickling.py
	WORKLOAD_SEEDS=$(or $(WORKLOAD_SEEDS),0) $(PYTHON) -m pytest -q \
		tests/engine/test_differential.py -k "runtime"

# One-seed smoke of the columnar kernel: the columnar unit/property suites,
# then the differential columnar pass — every regime and database flavour
# with the columnar backend forced per decomposition strategy, plus the
# sharded (1/2/4) and process-runtime rungs, all against the naive solver
# with coverage guards asserting the columnar kernel actually executed.
# Override the seed with WORKLOAD_SEEDS=n.
columnar-smoke:
	$(PYTHON) -m pytest -q tests/cq/test_columnar.py \
		tests/property/test_columnar_roundtrip.py \
		tests/engine/test_columnar_backend.py
	WORKLOAD_SEEDS=$(or $(WORKLOAD_SEEDS),0) $(PYTHON) -m pytest -q \
		tests/engine/test_differential.py -k "columnar"

# One-seed smoke of worker-affinity routing: the assignment property tests,
# then the differential affinity pass (owner-routed process runtime across
# every regime and database flavour at shards 1/2/4) vs the naive solver,
# with the coverage guard asserting every shard task executed on its owning
# worker and no recovery traffic occurred.  Override the seed with
# WORKLOAD_SEEDS=n.
affinity-smoke:
	$(PYTHON) -m pytest -q tests/property/test_affinity_assignment.py
	WORKLOAD_SEEDS=$(or $(WORKLOAD_SEEDS),0) $(PYTHON) -m pytest -q \
		tests/engine/test_differential.py -k "affinity"

# One-seed smoke of the versioned write path: the storage version seam and
# incremental-evaluation unit tests, the service append/subscription
# endpoints, then the differential incremental pass — append-heavy replay
# where a standing IncrementalView's semi-naive refresh must equal a
# from-scratch evaluation after every append batch, across shards 1/2/4
# and through process-runtime delta shipping (with the coverage guard that
# deltas actually shipped).  Override the seed with WORKLOAD_SEEDS=n.
delta-smoke:
	$(PYTHON) -m pytest -q tests/cq/test_versioning.py \
		tests/engine/test_incremental.py tests/service/test_subscriptions.py
	WORKLOAD_SEEDS=$(or $(WORKLOAD_SEEDS),0) $(PYTHON) -m pytest -q \
		tests/engine/test_differential.py -k "incremental or delta"

# One-seed smoke of the skew-aware adaptive layer: the statistics sketch
# unit + property suites, the join-ordering regression guard (cost-based
# never blows up vs the historical static-greedy order, and wins in
# aggregate), the hot-key spilling/sharding tests and the bounded columnar
# memos, then the skewed-regime differential pass — Zipfian and hub-heavy
# databases vs the naive solver with the coverage guard that cost-based
# ordering actually ran.  Override the seed with WORKLOAD_SEEDS=n.
skew-smoke:
	$(PYTHON) -m pytest -q tests/cq/test_statistics.py \
		tests/property/test_statistics_sketches.py \
		tests/cq/test_columnar_memo.py tests/engine/test_skew_sharding.py
	WORKLOAD_SEEDS=$(or $(WORKLOAD_SEEDS),0) $(PYTHON) -m pytest -q \
		tests/engine/test_join_ordering_regression.py
	WORKLOAD_SEEDS=$(or $(WORKLOAD_SEEDS),0) $(PYTHON) -m pytest -q \
		tests/engine/test_differential.py -k "skew"

# Smoke of the query service front door: the service unit + end-to-end
# suites (a real server on a real socket — concurrent-client differential
# exactness vs a direct EngineSession, 503 shedding under a saturated
# admission queue, 50ms deadlines cancelling in-flight sharded calls with
# no orphaned futures, per-tenant isolation), the concurrency/lifetime
# regression tests the service exposed, then the load benchmark, which
# writes benchmarks/BENCH_service.json (p50/p99 latency + throughput).
service-smoke:
	$(PYTHON) -m pytest -q tests/service tests/engine/test_concurrency_fixes.py
	$(PYTHON) benchmarks/bench_service.py

# Perf-regression gate: re-run the engine benchmarks and fail on >2x slowdown
# against benchmarks/BENCH_engine.json.
bench:
	$(PYTHON) -m pytest -q -m bench benchmarks/check_regression.py

# Refresh the recorded baseline (only after verifying a genuine speedup).
bench-baseline:
	$(PYTHON) benchmarks/bench_engine_scaling.py
