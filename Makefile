PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-baseline

test:
	$(PYTHON) -m pytest -x -q

# Perf-regression gate: re-run the engine benchmarks and fail on >2x slowdown
# against benchmarks/BENCH_engine.json.
bench:
	$(PYTHON) -m pytest -q -m bench benchmarks/check_regression.py

# Refresh the recorded baseline (only after verifying a genuine speedup).
bench-baseline:
	$(PYTHON) benchmarks/bench_engine_scaling.py
